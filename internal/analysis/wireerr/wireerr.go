// Package wireerr enforces the decode-path discipline of the wire
// protocol (internal/wire; exercised by core's transport_error_test.go):
// a frame read off a real TCP connection can be short, truncated, or
// carry an unknown type byte, and every decode path must turn those
// into errors instead of panics or silent misreads. Three rules:
//
//  1. In a wire package, every Decode*/parse function taking a []byte
//     payload must return an error and must length-guard the payload
//     (an `if` comparing len(payload)) before indexing it — otherwise
//     a short frame panics the reader instead of failing the decode.
//  2. In a wire package, the error result of io.ReadFull must not be
//     discarded; a short read that is ignored yields a zero-filled
//     buffer that decodes to garbage.
//  3. Everywhere: a switch over a wire message-type value (a named
//     type …/wire.MsgType) must carry a default case, so an unknown
//     or future message type is handled rather than silently dropped
//     (transport.go answers them with an error; String() renders
//     "msg(N)").
package wireerr

import (
	"go/ast"
	"go/types"
	"strings"

	"repro/internal/analysis"
)

// Analyzer is the wireerr checker.
var Analyzer = &analysis.Analyzer{
	Name: "wireerr",
	Doc:  "require length-guarded decodes, handled short reads, and default cases on message-type switches",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	inWire := isWirePath(pass.Pkg.Path())
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if ok && inWire && strings.HasPrefix(fn.Name.Name, "Decode") {
				checkDecode(pass, fn)
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.SwitchStmt:
				checkMsgSwitch(pass, s)
			case *ast.CallExpr:
				if inWire {
					checkReadFull(pass, s, f)
				}
			}
			return true
		})
	}
	return nil
}

func isWirePath(path string) bool {
	return path == "wire" || strings.HasSuffix(path, "/wire")
}

// checkDecode verifies rule 1 on one Decode* function.
func checkDecode(pass *analysis.Pass, fn *ast.FuncDecl) {
	payload := byteSliceParam(pass, fn)
	if payload == nil || fn.Body == nil {
		return
	}
	if !returnsError(pass, fn) {
		pass.Reportf(fn.Pos(), "%s decodes a payload but returns no error; short or corrupt frames cannot be reported", fn.Name.Name)
	}
	if usesPayloadUnsafely(pass, fn.Body, payload) && !hasLenGuard(pass, fn.Body, payload) {
		pass.Reportf(fn.Pos(), "%s indexes its payload without a len() guard; a short frame panics the decoder instead of returning an error", fn.Name.Name)
	}
}

// byteSliceParam returns the first []byte parameter's object.
func byteSliceParam(pass *analysis.Pass, fn *ast.FuncDecl) *types.Var {
	for _, field := range fn.Type.Params.List {
		for _, name := range field.Names {
			obj, ok := pass.TypesInfo.Defs[name].(*types.Var)
			if !ok {
				continue
			}
			if sl, ok := obj.Type().Underlying().(*types.Slice); ok {
				if b, ok := sl.Elem().Underlying().(*types.Basic); ok && b.Kind() == types.Byte {
					return obj
				}
			}
		}
	}
	return nil
}

func returnsError(pass *analysis.Pass, fn *ast.FuncDecl) bool {
	if fn.Type.Results == nil {
		return false
	}
	for _, field := range fn.Type.Results.List {
		if tv, ok := pass.TypesInfo.Types[field.Type]; ok && tv.Type != nil && tv.Type.String() == "error" {
			return true
		}
	}
	return false
}

// usesPayloadUnsafely reports whether body indexes, slices, or passes
// the payload to a fixed-width binary accessor — anything that panics
// on short input.
func usesPayloadUnsafely(pass *analysis.Pass, body *ast.BlockStmt, payload *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		switch e := n.(type) {
		case *ast.IndexExpr:
			if isVar(pass, e.X, payload) {
				found = true
			}
		case *ast.SliceExpr:
			if isVar(pass, e.X, payload) {
				found = true
			}
		case *ast.CallExpr:
			// binary.BigEndian.Uint32(p) panics when len(p) < 4.
			for _, arg := range e.Args {
				if isVar(pass, arg, payload) {
					if sel, ok := e.Fun.(*ast.SelectorExpr); ok && strings.HasPrefix(sel.Sel.Name, "Uint") {
						found = true
					}
				}
			}
		}
		return !found
	})
	return found
}

// hasLenGuard reports whether body contains an if condition comparing
// len(payload) against something.
func hasLenGuard(pass *analysis.Pass, body *ast.BlockStmt, payload *types.Var) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		ifs, ok := n.(*ast.IfStmt)
		if !ok {
			return true
		}
		ast.Inspect(ifs.Cond, func(c ast.Node) bool {
			call, ok := c.(*ast.CallExpr)
			if !ok || len(call.Args) != 1 {
				return true
			}
			id, ok := call.Fun.(*ast.Ident)
			if !ok || id.Name != "len" {
				return true
			}
			if isVar(pass, call.Args[0], payload) {
				found = true
				return false
			}
			return true
		})
		return !found
	})
	return found
}

func isVar(pass *analysis.Pass, e ast.Expr, v *types.Var) bool {
	id, ok := e.(*ast.Ident)
	return ok && pass.TypesInfo.Uses[id] == v
}

// checkReadFull verifies rule 2: io.ReadFull's error is consumed.
func checkReadFull(pass *analysis.Pass, call *ast.CallExpr, f *ast.File) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ReadFull" {
		return
	}
	id, ok := sel.X.(*ast.Ident)
	if !ok {
		return
	}
	pkgName, ok := pass.TypesInfo.Uses[id].(*types.PkgName)
	if !ok || pkgName.Imported().Path() != "io" {
		return
	}
	// The call is fine exactly when it appears as the RHS of an
	// assignment that binds the error to a real identifier.
	bound := false
	ast.Inspect(f, func(n ast.Node) bool {
		asg, ok := n.(*ast.AssignStmt)
		if !ok || len(asg.Rhs) != 1 || asg.Rhs[0] != ast.Expr(call) {
			return true
		}
		if len(asg.Lhs) == 2 {
			if errID, ok := asg.Lhs[1].(*ast.Ident); ok && errID.Name != "_" {
				bound = true
			}
		}
		return true
	})
	if !bound {
		pass.Reportf(call.Pos(), "io.ReadFull's error is discarded; a short read must abort the decode")
	}
}

// checkMsgSwitch verifies rule 3: switches over a wire MsgType value
// carry a default case.
func checkMsgSwitch(pass *analysis.Pass, s *ast.SwitchStmt) {
	if s.Tag == nil {
		return
	}
	tv, ok := pass.TypesInfo.Types[s.Tag]
	if !ok || tv.Type == nil {
		return
	}
	named, ok := tv.Type.(*types.Named)
	if !ok {
		return
	}
	obj := named.Obj()
	if obj.Name() != "MsgType" || obj.Pkg() == nil || !isWirePath(obj.Pkg().Path()) {
		return
	}
	for _, st := range s.Body.List {
		if cc, ok := st.(*ast.CaseClause); ok && cc.List == nil {
			return // has default
		}
	}
	pass.Reportf(s.Pos(), "switch over wire.MsgType has no default case; unknown message types must be handled, not dropped")
}
