// Positive wireerr fixture: the package path is "wire", so the decode
// discipline applies — payload decoders must return errors and
// length-guard, io.ReadFull errors must be consumed, and MsgType
// switches need default cases.
package wire

import (
	"encoding/binary"
	"errors"
	"io"
)

var errShort = errors.New("wire: short frame")

// DecodeBad ignores both rules: no error result, and it indexes the
// payload without checking len first.
func DecodeBad(payload []byte) uint16 { // want `DecodeBad decodes a payload but returns no error` `DecodeBad indexes its payload without a len\(\) guard`
	return uint16(payload[0])<<8 | uint16(payload[1])
}

// DecodeLen returns an error but still trusts the frame width.
func DecodeLen(payload []byte) (uint32, error) { // want `DecodeLen indexes its payload without a len\(\) guard`
	return binary.BigEndian.Uint32(payload), nil
}

// DecodeGood is the required shape: guard, then read.
func DecodeGood(payload []byte) (uint16, error) {
	if len(payload) < 2 {
		return 0, errShort
	}
	return uint16(payload[0])<<8 | uint16(payload[1]), nil
}

func readFrame(r io.Reader) ([]byte, error) {
	buf := make([]byte, 4)
	io.ReadFull(r, buf) // want `io\.ReadFull's error is discarded`
	var n int
	n, _ = io.ReadFull(r, buf) // want `io\.ReadFull's error is discarded`
	_ = n
	if _, err := io.ReadFull(r, buf); err != nil {
		return nil, err
	}
	return buf, nil
}

// MsgType mirrors the real wire message-type byte.
type MsgType uint8

const (
	MsgSummary MsgType = 1
	MsgAck     MsgType = 2
)

func dispatchBad(t MsgType) int {
	switch t { // want `switch over wire\.MsgType has no default case`
	case MsgSummary:
		return 1
	case MsgAck:
		return 2
	}
	return 0
}

func dispatchGood(t MsgType) int {
	switch t {
	case MsgSummary:
		return 1
	default:
		return -1
	}
}

// A reviewed exception is silenced with the convention.
//
//jaalvet:ignore wireerr — fixture: checksum probe, caller validates frame length first
func DecodeProbe(payload []byte) byte {
	return payload[0]
}
