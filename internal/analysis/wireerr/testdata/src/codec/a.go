// Negative wireerr fixture: "codec" is not a wire package, and its
// MsgType is its own named type — none of the wire rules apply.
package codec

type MsgType uint8

const msgPing MsgType = 1

// Not a wire package: decode shape is unconstrained here.
func DecodeLoose(payload []byte) byte {
	return payload[0]
}

func dispatch(t MsgType) int {
	switch t {
	case msgPing:
		return 1
	}
	return 0
}
