package wireerr_test

import (
	"testing"

	"repro/internal/analysis/analysistest"
	"repro/internal/analysis/wireerr"
)

func TestWireerr(t *testing.T) {
	analysistest.Run(t, wireerr.Analyzer, "testdata", "wire", "codec")
}
