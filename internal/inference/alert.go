package inference

import (
	"fmt"
	"time"

	"repro/internal/rules"
)

// Alert timestamps come from an injected Clock (clock.go), never from
// time.Now: wall-clock stamps made same-seed alert streams differ
// byte-for-byte, which broke the reproducibility contract every
// experiment relies on.

// Alert is an issued intrusion alert.
type Alert struct {
	// Attack identifies the matched attack/rule.
	Attack rules.AttackID
	// SID is the Snort rule ID that fired.
	SID int
	// Msg is the rule's message.
	Msg string
	// Epoch is the inference round that produced the alert.
	Epoch uint64
	// Time is the issue time as derived from the epoch by the
	// controller's Clock — simulation time, not the wall clock, so
	// same-seed runs emit identical alerts.
	Time time.Time
	// MatchedPackets is the estimated number of packets behind the
	// alert (Σ c_i over matching centroids).
	MatchedPackets int
	// Distributed reports whether the postprocessor classified the
	// attack as distributed (variance over threshold).
	Distributed bool
	// Variance is the measured postprocessor variance, when applicable.
	Variance float64
	// ViaFeedback reports whether the alert needed the raw-packet
	// feedback path (case 3 of §5.3).
	ViaFeedback bool
}

// String renders the alert as a log line.
func (a *Alert) String() string {
	return fmt.Sprintf("[epoch %d] ALERT %s sid=%d matched=%d distributed=%v msg=%q",
		a.Epoch, a.Attack, a.SID, a.MatchedPackets, a.Distributed, a.Msg)
}

// NewAlertFromMatch builds an alert from a plain (single-threshold)
// match result, stamping it via clk (nil selects DefaultClock).
func NewAlertFromMatch(id rules.AttackID, epoch uint64, m *MatchResult, clk Clock) *Alert {
	if clk == nil {
		clk = DefaultClock
	}
	a := &Alert{
		Attack:         id,
		Epoch:          epoch,
		Time:           clk.At(epoch),
		MatchedPackets: m.MatchedCount,
		Variance:       m.Variance,
	}
	if m.Question != nil && m.Question.Rule != nil {
		a.SID = m.Question.Rule.SID
		a.Msg = m.Question.Rule.Msg
	}
	if m.Question != nil && m.Question.Variance != nil {
		a.Distributed = m.VariancePassed
	}
	return a
}

// NewAlertFromFeedback builds an alert from a feedback-loop result,
// stamping it via clk (nil selects DefaultClock).
func NewAlertFromFeedback(id rules.AttackID, epoch uint64, r *FeedbackResult, clk Clock) *Alert {
	a := NewAlertFromMatch(id, epoch, r.Stage2, clk)
	a.Attack = id
	a.ViaFeedback = r.Verdict == VerdictUncertain
	return a
}
