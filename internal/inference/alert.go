package inference

import (
	"fmt"
	"time"

	"repro/internal/rules"
)

// Alert is an issued intrusion alert.
type Alert struct {
	// Attack identifies the matched attack/rule.
	Attack rules.AttackID
	// SID is the Snort rule ID that fired.
	SID int
	// Msg is the rule's message.
	Msg string
	// Epoch is the inference round that produced the alert.
	Epoch uint64
	// Time is the wall-clock issue time.
	Time time.Time
	// MatchedPackets is the estimated number of packets behind the
	// alert (Σ c_i over matching centroids).
	MatchedPackets int
	// Distributed reports whether the postprocessor classified the
	// attack as distributed (variance over threshold).
	Distributed bool
	// Variance is the measured postprocessor variance, when applicable.
	Variance float64
	// ViaFeedback reports whether the alert needed the raw-packet
	// feedback path (case 3 of §5.3).
	ViaFeedback bool
}

// String renders the alert as a log line.
func (a *Alert) String() string {
	return fmt.Sprintf("[epoch %d] ALERT %s sid=%d matched=%d distributed=%v msg=%q",
		a.Epoch, a.Attack, a.SID, a.MatchedPackets, a.Distributed, a.Msg)
}

// NewAlertFromMatch builds an alert from a plain (single-threshold)
// match result.
func NewAlertFromMatch(id rules.AttackID, epoch uint64, m *MatchResult) *Alert {
	a := &Alert{
		Attack:         id,
		Epoch:          epoch,
		Time:           time.Now(),
		MatchedPackets: m.MatchedCount,
		Variance:       m.Variance,
	}
	if m.Question != nil && m.Question.Rule != nil {
		a.SID = m.Question.Rule.SID
		a.Msg = m.Question.Rule.Msg
	}
	if m.Question != nil && m.Question.Variance != nil {
		a.Distributed = m.VariancePassed
	}
	return a
}

// NewAlertFromFeedback builds an alert from a feedback-loop result.
func NewAlertFromFeedback(id rules.AttackID, epoch uint64, r *FeedbackResult) *Alert {
	a := NewAlertFromMatch(id, epoch, r.Stage2)
	a.Attack = id
	a.ViaFeedback = r.Verdict == VerdictUncertain
	return a
}
