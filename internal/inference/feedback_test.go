package inference

import (
	"math/rand"
	"strings"
	"testing"

	"repro/internal/packet"
	"repro/internal/summary"
)

// TestClassifyVerdict pins the Fig. 3 case table, including case 4
// (t1 ∧ ¬t2), which stage monotonicity makes unreachable through
// RunFeedback with a validated config but which the controller's
// verdict accounting must still name correctly.
func TestClassifyVerdict(t *testing.T) {
	cases := []struct {
		t1, t2 bool
		want   Verdict
	}{
		{true, true, VerdictAlert},
		{false, false, VerdictClear},
		{false, true, VerdictUncertain},
		{true, false, VerdictAnomalous},
	}
	for _, c := range cases {
		if got := classifyVerdict(c.t1, c.t2); got != c.want {
			t.Errorf("classifyVerdict(%v, %v) = %v, want %v", c.t1, c.t2, got, c.want)
		}
	}
	if VerdictAnomalous.String() != "anomalous" {
		t.Errorf("VerdictAnomalous.String() = %q", VerdictAnomalous.String())
	}
	if got := Verdict(99).String(); got != "verdict(99)" {
		t.Errorf("unknown verdict renders %q", got)
	}
}

// TestFeedbackAnomalousUnreachable documents why case 4 cannot fire
// from real aggregates: τ_d2 ≥ τ_d1 and τ_c2 ≤ τ_c make stage 2's
// count trigger monotone in stage 1's, so t1 ⇒ t2 across a sweep of
// operating points.
func TestFeedbackAnomalousUnreachable(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	mixed := append(benignHeaders(rng, 700), synFloodHeaders(rng, 300, 0x0A000001)...)
	sum := summarize(t, mixed, 0, 0)
	agg, err := AggregateSummaries([]*summary.Summary{sum})
	if err != nil {
		t.Fatal(err)
	}
	q := synQuestion(t, 80)
	for _, tau1 := range []float64{0, 0.01, 0.05, 0.08, 0.15} {
		for _, tau2 := range []float64{0.02, 0.08, 0.2, 0.4} {
			if tau2 <= tau1 {
				continue
			}
			for _, cs := range []float64{0, 0.3, 0.7, 1} {
				res, err := RunFeedback(agg, q, FeedbackConfig{TauD1: tau1, TauD2: tau2, CountScale2: cs}, nil, nil)
				if err != nil {
					t.Fatal(err)
				}
				if res.Verdict == VerdictAnomalous {
					t.Fatalf("anomalous verdict at τ_d1=%v τ_d2=%v cs=%v: stage monotonicity violated", tau1, tau2, cs)
				}
			}
		}
	}
}

func TestStage2CountThreshold(t *testing.T) {
	cases := []struct {
		scale float64
		tc    int
		want  int
	}{
		{0, 100, 100},   // zero means no relaxation
		{1, 100, 100},   // one means no relaxation
		{0.5, 100, 50},  // plain relaxation
		{0.55, 9, 4},    // truncation toward zero
		{0.5, 1, 1},     // relaxed < 1 clamps to 1
		{0.001, 100, 1}, // aggressive relaxation clamps to 1
		{0.5, 0, 1},     // zero τ_c still clamps up to 1
	}
	for _, c := range cases {
		cfg := FeedbackConfig{TauD1: 0.01, TauD2: 0.1, CountScale2: c.scale}
		if got := cfg.stage2CountThreshold(c.tc); got != c.want {
			t.Errorf("stage2CountThreshold(scale=%v, tc=%d) = %d, want %d", c.scale, c.tc, got, c.want)
		}
	}
}

func TestValidateRejectsDegenerateBand(t *testing.T) {
	for _, cs := range []float64{0, 1} {
		err := (FeedbackConfig{TauD1: 0.1, TauD2: 0.1, CountScale2: cs}).Validate()
		if err == nil {
			t.Fatalf("τ_d1 == τ_d2 with CountScale2=%v must be rejected", cs)
		}
		if !strings.Contains(err.Error(), "degenerate") {
			t.Fatalf("error should name the degeneracy, got %v", err)
		}
	}
	// Equal thresholds with a real count relaxation keep a usable band.
	if err := (FeedbackConfig{TauD1: 0.1, TauD2: 0.1, CountScale2: 0.5}).Validate(); err != nil {
		t.Fatalf("count-relaxed equal thresholds are valid: %v", err)
	}
	// And distinct thresholds remain valid with any legal scale.
	for _, cs := range []float64{0, 0.5, 1} {
		if err := (FeedbackConfig{TauD1: 0.05, TauD2: 0.1, CountScale2: cs}).Validate(); err != nil {
			t.Fatalf("valid config rejected (cs=%v): %v", cs, err)
		}
	}
}

func TestFeedbackRawPacketsCountTransferOnly(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	mixed := append(benignHeaders(rng, 900), synFloodHeaders(rng, 100, 0x0A000001)...)
	buf := summary.NewBuffer(len(mixed))
	var batch *summary.Batch
	for _, h := range mixed {
		batch, _ = buf.Add(h)
	}
	if batch == nil {
		t.Fatal("batch not sealed")
	}
	sum := summarize(t, batch.Headers, 1, batch.Epoch)
	buf.Retain(batch, sum)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})
	q := synQuestion(t, 60)

	// First run against a cold fetcher: everything is a transfer.
	cold := &memFetcher{buffers: map[int]*summary.Buffer{1: buf}}
	res1, err := RunFeedback(agg, q, FeedbackConfig{TauD1: 0, TauD2: 0.2}, cold, thresholdMatcher{minSYN: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res1.Verdict != VerdictUncertain || res1.RawPackets == 0 {
		t.Fatalf("expected uncertain with transfers, got %v/%d", res1.Verdict, res1.RawPackets)
	}

	// Second run through a fetcher that reports zero transferred (a
	// warm per-epoch cache): same raw data, zero accounted cost.
	warm := &zeroTransferFetcher{inner: cold}
	res2, err := RunFeedback(agg, q, FeedbackConfig{TauD1: 0, TauD2: 0.2}, warm, thresholdMatcher{minSYN: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Alerted != res1.Alerted {
		t.Fatal("cache hits must not change the decision")
	}
	if res2.RawPackets != 0 {
		t.Fatalf("cache hits accounted %d transferred packets, want 0", res2.RawPackets)
	}
	if res2.RawFetches != res1.RawFetches {
		t.Fatalf("fetch requests differ: %d vs %d", res2.RawFetches, res1.RawFetches)
	}
}

// zeroTransferFetcher wraps a fetcher, reporting every pull as a cache
// hit (transferred == 0).
type zeroTransferFetcher struct{ inner RawPacketFetcher }

func (f *zeroTransferFetcher) FetchRaw(ref CentroidRef) ([]packet.Header, int, error) {
	hs, _, err := f.inner.FetchRaw(ref)
	return hs, 0, err
}
