package inference

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rules"
)

// Verdict classifies the feedback loop's four cases (§5.3, Fig. 3).
type Verdict int

// Feedback-loop verdicts.
const (
	// VerdictAlert: t1 positive and t2 positive (case 1) — high
	// confidence attack; alert immediately.
	VerdictAlert Verdict = iota
	// VerdictClear: t1 negative and t2 negative (case 2) — no alert.
	VerdictClear
	// VerdictUncertain: t1 negative, t2 positive (case 3) — fetch raw
	// packets for the uncertain centroids and re-analyze.
	VerdictUncertain
	// VerdictAnomalous: t1 positive, t2 negative (case 4) — should not
	// occur since τ_d2 > τ_d1 implies t1's matches are a subset of
	// t2's; surfaced for observability.
	VerdictAnomalous
)

// String names the verdict.
func (v Verdict) String() string {
	switch v {
	case VerdictAlert:
		return "alert"
	case VerdictClear:
		return "clear"
	case VerdictUncertain:
		return "uncertain"
	case VerdictAnomalous:
		return "anomalous"
	default:
		return fmt.Sprintf("verdict(%d)", int(v))
	}
}

// classifyVerdict maps the two stage outcomes onto the four cases of
// Fig. 3. t1 is stage 1's full alert decision (count and variance), t2
// is stage 2's high-recall count trigger.
func classifyVerdict(t1, t2 bool) Verdict {
	switch {
	case t1 && t2:
		return VerdictAlert
	case !t1 && !t2:
		return VerdictClear
	case !t1 && t2:
		return VerdictUncertain
	default: // t1 && !t2
		return VerdictAnomalous
	}
}

// RawPacketFetcher retrieves the raw packet headers behind one centroid
// of one monitor's summary. The controller implements it over the wire
// protocol; tests implement it in memory.
type RawPacketFetcher interface {
	// FetchRaw returns the headers behind ref plus the number of
	// headers actually transferred over the wire for this call.
	// Fetchers that memoize within an epoch return transferred == 0 on
	// a cache hit, so one centroid pulled by several questions in the
	// same epoch is accounted (and transferred) exactly once; plain
	// uncached fetchers return transferred == len(headers).
	FetchRaw(ref CentroidRef) (hs []packet.Header, transferred int, err error)
}

// RawMatcher decides whether a set of raw packet headers constitutes the
// attack a question describes. The production implementation is the
// Snort-style raw engine; it is the "analysis ... by pattern matching
// using traditional Snort rules" of §5.3's case 3.
type RawMatcher interface {
	MatchRaw(q *rules.Question, hs []packet.Header) bool
}

// FeedbackConfig carries the per-attack two-stage configuration: stage 1
// is the low-FPR operating point (τ_d1, full τ_c), stage 2 the high-TPR
// one (τ_d2 ≥ τ_d1 and a τ_c relaxed by CountScale2 ≤ 1). Anything stage
// 2 catches that stage 1 missed is "uncertain" and resolved against raw
// packets (§5.3).
type FeedbackConfig struct {
	TauD1 float64
	TauD2 float64
	// CountScale2 relaxes stage 2's count threshold: τ_c2 = τ_c ×
	// CountScale2. Zero or 1 means no relaxation. Summaries lose part
	// of an attack's mass to contaminated clusters, so a count-bound
	// miss at stage 1 can only be recovered by a more sensitive second
	// stage; the raw-packet confirmation keeps the FPR in check.
	CountScale2 float64
}

// Validate reports whether the thresholds are ordered correctly and the
// configuration actually opens an uncertain band. τ_d1 == τ_d2 with no
// count relaxation makes stage 2 identical to stage 1 — the feedback
// loop would be "enabled" yet never fetch a raw packet, which is a
// misconfiguration masquerading as feedback, so it is rejected.
func (c FeedbackConfig) Validate() error {
	if c.TauD1 < 0 || c.TauD2 < c.TauD1 {
		return fmt.Errorf("inference: need 0 ≤ τ_d1 ≤ τ_d2, got %v, %v", c.TauD1, c.TauD2)
	}
	if c.CountScale2 < 0 || c.CountScale2 > 1 {
		return fmt.Errorf("inference: count scale %v outside [0,1]", c.CountScale2)
	}
	if c.TauD1 == c.TauD2 && (c.CountScale2 == 0 || c.CountScale2 == 1) {
		return fmt.Errorf("inference: degenerate feedback config: τ_d1 == τ_d2 == %v with count scale %v leaves an empty uncertain band (stage 2 ≡ stage 1)",
			c.TauD1, c.CountScale2)
	}
	return nil
}

// stage2CountThreshold returns stage 2's relaxed τ_c.
func (c FeedbackConfig) stage2CountThreshold(tc int) int {
	if c.CountScale2 <= 0 || c.CountScale2 >= 1 {
		return tc
	}
	relaxed := int(float64(tc) * c.CountScale2)
	if relaxed < 1 {
		relaxed = 1
	}
	return relaxed
}

// FeedbackResult is the outcome of a two-stage inference for one question.
type FeedbackResult struct {
	Question *rules.Question
	Verdict  Verdict
	// Alerted is the final decision after any raw-packet re-analysis.
	Alerted bool
	// Stage1, Stage2 are the threshold-based results at τ_d1 and τ_d2.
	Stage1, Stage2 *MatchResult
	// RawFetches counts centroids whose raw packets were requested,
	// cache hits included.
	RawFetches int
	// RawPackets counts raw packet headers actually transferred by the
	// feedback — the extra communication cost of §5.3. Centroids served
	// from a per-epoch cache cost nothing here, so summing RawPackets
	// over an epoch's questions equals the deduplicated transfer.
	RawPackets int
}

// RunFeedback performs the two-stage inference of §5.3 for one question.
//
// Both stages run over the same aggregate. Case 3 (uncertain) asks
// fetcher for the raw packets of every centroid matched at τ_d2 but not
// at τ_d1, and re-analyzes them with matcher; the final decision is the
// raw-analysis outcome. A nil fetcher or matcher downgrades case 3 to a
// summary-only decision at τ_d2 (alerting), preserving the high-TPR
// operating point at the price of FPR.
func RunFeedback(agg *Aggregate, q *rules.Question, cfg FeedbackConfig, fetcher RawPacketFetcher, matcher RawMatcher) (*FeedbackResult, error) {
	return runFeedback(agg, q, cfg, fetcher, matcher, true)
}

// runFeedback implements RunFeedback; candidate == false means the
// question index proved no centroid can match q at τ_d2 (the wider
// stage), so both stages run the pruned fast path — the same tail code
// over an empty matched set, keeping the result byte-identical to the
// full scan's.
func runFeedback(agg *Aggregate, q *rules.Question, cfg FeedbackConfig, fetcher RawPacketFetcher, matcher RawMatcher, candidate bool) (*FeedbackResult, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	q2 := q.WithCountThreshold(cfg.stage2CountThreshold(q.CountThreshold))
	var s1, s2 *MatchResult
	if candidate {
		s1 = estimateWithThreshold(agg, q, cfg.TauD1)
		s2 = estimateWithThreshold(agg, q2, cfg.TauD2)
	} else {
		s1 = estimatePruned(agg, q)
		s2 = estimatePruned(agg, q2)
	}
	res := &FeedbackResult{Question: q, Stage1: s1, Stage2: s2}

	t1 := s1.Alerted()
	// Stage 2 is a pure high-recall trigger: only the count matters.
	// Variance refinement belongs to stage 1 and to the raw re-analysis
	// — a wrong-window variance verdict must not suppress the fetch.
	t2 := s2.Matched
	res.Verdict = classifyVerdict(t1, t2)
	switch res.Verdict {
	case VerdictAlert:
		res.Alerted = true
	case VerdictClear:
	case VerdictUncertain:
		if fetcher == nil || matcher == nil {
			res.Alerted = true
			break
		}
		// Fetch the raw packets behind the sensitive stage's fetch set
		// — the uncertain evidence of Fig. 3, localized around the
		// winning tracked value so the transfer stays proportional to
		// the suspicion. (The set includes centroids stage 1 already
		// matched below its count threshold: those packets are part of
		// the same suspicion and the raw re-analysis needs them.)
		var raw []packet.Header
		for _, row := range s2.FetchRows {
			hs, transferred, err := fetcher.FetchRaw(agg.Refs[row])
			if err != nil {
				return nil, fmt.Errorf("inference: feedback fetch: %w", err)
			}
			res.RawFetches++
			res.RawPackets += transferred
			raw = append(raw, hs...) //jaal:alloc-ok uncertain-verdict path only, a handful of questions per epoch; row count is data-dependent
		}
		res.Alerted = matcher.MatchRaw(q, raw)
	default: // VerdictAnomalous
		res.Alerted = t1
	}
	return res, nil
}
