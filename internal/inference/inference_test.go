package inference

import (
	"errors"
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
)

// benignHeaders fabricates established-looking TCP traffic.
func benignHeaders(rng *rand.Rand, n int) []packet.Header {
	hs := make([]packet.Header, n)
	for i := range hs {
		hs[i] = packet.Header{
			SrcIP:       rng.Uint32(),
			DstIP:       0x0A000000 | rng.Uint32()&0xFFFF, // 10.0.x.x
			Protocol:    packet.ProtoTCP,
			TTL:         64,
			TotalLength: uint16(40 + rng.Intn(1400)),
			IPID:        uint16(rng.Intn(65536)),
			SrcPort:     uint16(1024 + rng.Intn(60000)),
			DstPort:     [4]uint16{80, 443, 8080, 25}[rng.Intn(4)],
			Seq:         rng.Uint32(),
			Ack:         rng.Uint32(),
			DataOffset:  5,
			Flags:       packet.FlagACK,
			Window:      uint16(8192 + rng.Intn(57343)),
		}
	}
	return hs
}

// synFloodHeaders fabricates a SYN flood against one victim from many
// random sources.
func synFloodHeaders(rng *rand.Rand, n int, victim uint32) []packet.Header {
	hs := make([]packet.Header, n)
	for i := range hs {
		hs[i] = packet.Header{
			SrcIP:       rng.Uint32(),
			DstIP:       victim,
			Protocol:    packet.ProtoTCP,
			TTL:         uint8(32 + rng.Intn(96)),
			TotalLength: 40,
			IPID:        uint16(rng.Intn(65536)),
			SrcPort:     uint16(1024 + rng.Intn(60000)),
			DstPort:     80,
			Seq:         rng.Uint32(),
			DataOffset:  5,
			Flags:       packet.FlagSYN,
			Window:      65535,
		}
	}
	return hs
}

func summarize(t *testing.T, hs []packet.Header, monitorID int, epoch uint64) *summary.Summary {
	t.Helper()
	s, err := summary.NewSummarizer(summary.Config{
		BatchSize: len(hs), Rank: 12, Centroids: len(hs) / 5, MinBatch: 1, Seed: 7,
	})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize(hs, monitorID, epoch)
	if err != nil {
		t.Fatal(err)
	}
	return sum
}

func synQuestion(t *testing.T, count int) *rules.Question {
	t.Helper()
	r, err := rules.Parse(`alert tcp any any -> any any (msg:"SYN flood"; flags:S; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rules.Translate(r, nil, rules.DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	return q.WithCountThreshold(count).WithDistanceThreshold(0.08)
}

func TestAggregateCombinesMonitors(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	s1 := summarize(t, benignHeaders(rng, 200), 1, 5)
	s2 := summarize(t, benignHeaders(rng, 300), 2, 5)
	agg, err := AggregateSummaries([]*summary.Summary{s1, s2})
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rows() != s1.K()+s2.K() {
		t.Fatalf("aggregate has %d rows, want %d", agg.Rows(), s1.K()+s2.K())
	}
	if agg.TotalPackets != 500 {
		t.Fatalf("total packets = %d, want 500", agg.TotalPackets)
	}
	if agg.Elements != s1.Elements()+s2.Elements() {
		t.Fatalf("elements = %d, want %d", agg.Elements, s1.Elements()+s2.Elements())
	}
	// Refs must track origins.
	if agg.Refs[0].MonitorID != 1 || agg.Refs[agg.Rows()-1].MonitorID != 2 {
		t.Fatalf("refs mislabeled: first=%+v last=%+v", agg.Refs[0], agg.Refs[agg.Rows()-1])
	}
}

func TestAggregateEmpty(t *testing.T) {
	agg, err := AggregateSummaries(nil)
	if err != nil {
		t.Fatal(err)
	}
	if agg.Rows() != 0 || agg.TotalPackets != 0 {
		t.Fatalf("empty aggregate: %+v", agg)
	}
}

func TestEstimateSimilarityDetectsSYNFlood(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	mixed := append(benignHeaders(rng, 800), synFloodHeaders(rng, 200, 0x0A000001)...)
	sum := summarize(t, mixed, 0, 0)
	agg, err := AggregateSummaries([]*summary.Summary{sum})
	if err != nil {
		t.Fatal(err)
	}
	q := synQuestion(t, 100)
	res := EstimateSimilarity(agg, q)
	if !res.Matched {
		t.Fatalf("SYN flood not detected: matched count %d", res.MatchedCount)
	}
	// The matched count should be in the ballpark of the 200 injected
	// SYNs (clustering may blur boundaries slightly).
	if res.MatchedCount < 120 || res.MatchedCount > 350 {
		t.Fatalf("matched count = %d, expected ≈200", res.MatchedCount)
	}
}

func TestEstimateSimilarityCleanTraffic(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	sum := summarize(t, benignHeaders(rng, 1000), 0, 0)
	agg, err := AggregateSummaries([]*summary.Summary{sum})
	if err != nil {
		t.Fatal(err)
	}
	q := synQuestion(t, 100)
	res := EstimateSimilarity(agg, q)
	if res.Matched {
		t.Fatalf("false positive on clean traffic: matched %d packets", res.MatchedCount)
	}
}

func TestPostprocessorDistinguishesDistributed(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	victim := uint32(0x0A000001)

	// Distributed flood: many random sources.
	dist := append(benignHeaders(rng, 500), synFloodHeaders(rng, 300, victim)...)
	// Single-source flood: one attacker.
	single := append(benignHeaders(rng, 500), func() []packet.Header {
		hs := synFloodHeaders(rng, 300, victim)
		for i := range hs {
			hs[i].SrcIP = 0x01020304
		}
		return hs
	}()...)

	q := synQuestion(t, 100).WithVariance(packet.FieldSrcIP, 0.01)

	check := func(hs []packet.Header) *MatchResult {
		sum := summarize(t, hs, 0, 0)
		agg, err := AggregateSummaries([]*summary.Summary{sum})
		if err != nil {
			t.Fatal(err)
		}
		return EstimateSimilarity(agg, q)
	}

	rd := check(dist)
	if !rd.Matched || !rd.VariancePassed {
		t.Fatalf("distributed flood: matched=%v variancePassed=%v var=%v", rd.Matched, rd.VariancePassed, rd.Variance)
	}
	rs := check(single)
	if !rs.Matched {
		t.Fatal("single-source flood must still match the signature")
	}
	if rs.VariancePassed {
		t.Fatalf("single-source flood must fail the src-IP variance check (var=%v)", rs.Variance)
	}
	if rd.Variance <= rs.Variance {
		t.Fatalf("distributed variance %v must exceed single-source %v", rd.Variance, rs.Variance)
	}
}

func TestMatchedVarianceEmpty(t *testing.T) {
	agg := &Aggregate{Representatives: linalg.NewMatrix(0, packet.NumFields)}
	if v := MatchedVariance(agg, nil, packet.FieldSrcIP); v != 0 {
		t.Fatalf("variance of empty match set = %v, want 0", v)
	}
}

func TestEvaluateAll(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	sum := summarize(t, benignHeaders(rng, 400), 0, 0)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})
	qs := []*rules.Question{synQuestion(t, 1), synQuestion(t, 1000000)}
	res := EvaluateAll(agg, qs)
	if len(res) != 2 {
		t.Fatalf("got %d results", len(res))
	}
	if res[1].Matched {
		t.Fatal("absurd count threshold must not match")
	}
}

// memFetcher serves raw packets from summaries' retained assignments.
type memFetcher struct {
	buffers map[int]*summary.Buffer
	calls   int
}

func (f *memFetcher) FetchRaw(ref CentroidRef) ([]packet.Header, int, error) {
	f.calls++
	b, ok := f.buffers[ref.MonitorID]
	if !ok {
		return nil, 0, errors.New("no such monitor")
	}
	hs := b.RawPackets(ref.Epoch, ref.Centroid)
	return hs, len(hs), nil
}

// thresholdMatcher alerts when at least minSYN raw packets carry SYN.
type thresholdMatcher struct{ minSYN int }

func (m thresholdMatcher) MatchRaw(q *rules.Question, hs []packet.Header) bool {
	n := 0
	for i := range hs {
		if hs[i].Flags.Has(packet.FlagSYN) {
			n++
		}
	}
	return n >= m.minSYN
}

func TestFeedbackConfigValidate(t *testing.T) {
	if err := (FeedbackConfig{TauD1: 0.1, TauD2: 0.05}).Validate(); err == nil {
		t.Fatal("τ_d2 < τ_d1 must be rejected")
	}
	if err := (FeedbackConfig{TauD1: -1, TauD2: 0}).Validate(); err == nil {
		t.Fatal("negative τ_d1 must be rejected")
	}
	if err := (FeedbackConfig{TauD1: 0.02, TauD2: 0.1}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestFeedbackCaseAlert(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	mixed := append(benignHeaders(rng, 600), synFloodHeaders(rng, 400, 0x0A000001)...)
	sum := summarize(t, mixed, 0, 0)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})
	q := synQuestion(t, 100)
	res, err := RunFeedback(agg, q, FeedbackConfig{TauD1: 0.08, TauD2: 0.2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictAlert || !res.Alerted {
		t.Fatalf("verdict = %v alerted = %v, want alert", res.Verdict, res.Alerted)
	}
	if res.RawFetches != 0 {
		t.Fatal("case 1 must not fetch raw packets")
	}
}

func TestFeedbackCaseClear(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	sum := summarize(t, benignHeaders(rng, 600), 0, 0)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})
	q := synQuestion(t, 100)
	res, err := RunFeedback(agg, q, FeedbackConfig{TauD1: 0.01, TauD2: 0.02}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictClear || res.Alerted {
		t.Fatalf("verdict = %v alerted = %v, want clear", res.Verdict, res.Alerted)
	}
}

func TestFeedbackCaseUncertainFetchesRaw(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	// A modest flood that the tight threshold misses but the loose one
	// catches: engineered by sandwiching flood packets among benign
	// ones so centroids land between the two thresholds.
	mixed := append(benignHeaders(rng, 900), synFloodHeaders(rng, 100, 0x0A000001)...)

	buf := summary.NewBuffer(len(mixed))
	var batch *summary.Batch
	for _, h := range mixed {
		batch, _ = buf.Add(h)
	}
	if batch == nil {
		t.Fatal("batch not sealed")
	}
	sum := summarize(t, batch.Headers, 1, batch.Epoch)
	buf.Retain(batch, sum)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})

	q := synQuestion(t, 60)
	fetcher := &memFetcher{buffers: map[int]*summary.Buffer{1: buf}}
	// τ_d1 = 0 (only exact matches — clustering noise keeps centroids
	// off the exact signature), τ_d2 loose.
	res, err := RunFeedback(agg, q, FeedbackConfig{TauD1: 0.0, TauD2: 0.2}, fetcher, thresholdMatcher{minSYN: 60})
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictUncertain {
		t.Fatalf("verdict = %v, want uncertain (s1=%d s2=%d)", res.Verdict, res.Stage1.MatchedCount, res.Stage2.MatchedCount)
	}
	if res.RawFetches == 0 || fetcher.calls == 0 {
		t.Fatal("case 3 must fetch raw packets")
	}
	if !res.Alerted {
		t.Fatalf("raw re-analysis must confirm the flood (fetched %d packets)", res.RawPackets)
	}
	if res.RawPackets == 0 {
		t.Fatal("raw packet count must be accounted")
	}
}

func TestFeedbackUncertainWithoutFetcherAlerts(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	mixed := append(benignHeaders(rng, 900), synFloodHeaders(rng, 100, 0x0A000001)...)
	sum := summarize(t, mixed, 0, 0)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})
	q := synQuestion(t, 60)
	res, err := RunFeedback(agg, q, FeedbackConfig{TauD1: 0.0, TauD2: 0.2}, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if res.Verdict != VerdictUncertain || !res.Alerted {
		t.Fatalf("nil fetcher must fall back to alerting: %v/%v", res.Verdict, res.Alerted)
	}
}

func TestAlertConstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(10))
	mixed := append(benignHeaders(rng, 500), synFloodHeaders(rng, 300, 0x0A000001)...)
	sum := summarize(t, mixed, 0, 3)
	agg, _ := AggregateSummaries([]*summary.Summary{sum})
	q := synQuestion(t, 100).WithVariance(packet.FieldSrcIP, 0.01)
	m := EstimateSimilarity(agg, q)
	a := NewAlertFromMatch(rules.AttackDistributedSYNFlood, 3, m, nil)
	if a.Attack != rules.AttackDistributedSYNFlood || a.Epoch != 3 {
		t.Fatalf("alert = %+v", a)
	}
	if want := DefaultClock.At(3); !a.Time.Equal(want) {
		t.Fatalf("alert time = %v, want epoch-derived %v", a.Time, want)
	}
	if a.SID != 1 {
		t.Fatalf("sid = %d, want 1", a.SID)
	}
	if !a.Distributed {
		t.Fatal("distributed flood alert must be flagged distributed")
	}
	if a.String() == "" {
		t.Fatal("alert must render")
	}
}
