package inference

import "time"

// Clock supplies alert timestamps. Deterministic deployments derive
// the timestamp from the inference epoch so same-seed runs produce
// byte-identical alert streams (ISSUE 3; enforced by the detrand
// analyzer, which rejects time.Now in this package); a live deployment
// can install a wall clock at the boundary instead.
type Clock interface {
	// At returns the timestamp for an alert raised in the given epoch.
	At(epoch uint64) time.Time
}

// EpochClock is the deterministic Clock: Base + epoch·Interval, the
// simulation-time reading of the controller's epoch counter.
type EpochClock struct {
	// Base anchors epoch 0.
	Base time.Time
	// Interval is the epoch length (the paper's controller polls every
	// 2 s, §7).
	Interval time.Duration
}

// At implements Clock.
func (c EpochClock) At(epoch uint64) time.Time {
	return c.Base.Add(time.Duration(epoch) * c.Interval)
}

// DefaultClock anchors simulation time at the Unix epoch with the
// paper's 2-second controller cadence. It is what alert constructors
// use when no clock is injected.
var DefaultClock Clock = EpochClock{Base: time.Unix(0, 0).UTC(), Interval: 2 * time.Second}
