// Package inference implements Jaal's centralized analysis and inference
// module (§5): aggregation of per-monitor summaries into a global view,
// the similarity estimator of Algorithm 1, the variance postprocessor of
// Algorithm 2, and the two-threshold feedback loop of §5.3.
package inference

import (
	"fmt"

	"repro/internal/linalg"
	"repro/internal/packet"
	"repro/internal/summary"
)

// CentroidRef identifies one row of an aggregated summary back to its
// originating monitor, epoch and centroid index. The feedback loop uses
// refs to ask the right monitor for the raw packets behind an uncertain
// centroid.
type CentroidRef struct {
	MonitorID int
	Epoch     uint64
	Centroid  int
}

// Aggregate is S^a: the global view assembled from all monitors'
// summaries for one inference round (§5.1). Representatives is the tall
// matrix X̃_a (at most M·k rows); Counts is c_a; Refs maps each row back
// to its origin.
type Aggregate struct {
	Representatives *linalg.Matrix
	Counts          []int
	Refs            []CentroidRef
	// TotalPackets is the number of raw packets the aggregate stands
	// for: Σ counts.
	TotalPackets int
	// Elements is the total communication cost, in float64 elements, of
	// the summaries that were aggregated.
	Elements int
}

// Rows returns the number of representative packets in the aggregate.
func (a *Aggregate) Rows() int {
	if a.Representatives == nil {
		return 0
	}
	return a.Representatives.Rows()
}

// Aggregator accumulates summaries for one round.
type Aggregator struct {
	reps   [][]float64
	counts []int
	refs   []CentroidRef
	elems  int
}

// NewAggregator returns an empty Aggregator.
func NewAggregator() *Aggregator { return &Aggregator{} }

// Add appends one monitor summary. Split summaries are first
// reconstructed into full-width representatives (§5.1).
func (g *Aggregator) Add(s *summary.Summary) error {
	reps, err := s.Representatives()
	if err != nil {
		return fmt.Errorf("inference: aggregate: %w", err)
	}
	if reps.Cols() != packet.NumFields {
		return fmt.Errorf("inference: summary has %d fields, want %d", reps.Cols(), packet.NumFields)
	}
	if len(s.Counts) != reps.Rows() {
		return fmt.Errorf("inference: %d counts for %d representatives", len(s.Counts), reps.Rows())
	}
	for i := 0; i < reps.Rows(); i++ {
		row := make([]float64, packet.NumFields)
		copy(row, reps.Row(i))
		g.reps = append(g.reps, row)
		g.counts = append(g.counts, s.Counts[i])
		g.refs = append(g.refs, CentroidRef{MonitorID: s.MonitorID, Epoch: s.Epoch, Centroid: i})
	}
	g.elems += s.Elements()
	return nil
}

// Build finalizes the round into an Aggregate. An empty aggregator yields
// an Aggregate with zero rows.
func (g *Aggregator) Build() (*Aggregate, error) {
	agg := &Aggregate{Counts: g.counts, Refs: g.refs, Elements: g.elems}
	if len(g.reps) == 0 {
		agg.Representatives = linalg.NewMatrix(0, packet.NumFields)
		return agg, nil
	}
	m, err := linalg.NewMatrixFromRows(g.reps)
	if err != nil {
		return nil, err
	}
	agg.Representatives = m
	for _, c := range g.counts {
		agg.TotalPackets += c
	}
	return agg, nil
}

// AggregateSummaries is a convenience that aggregates a slice of
// summaries in one call.
func AggregateSummaries(ss []*summary.Summary) (*Aggregate, error) {
	g := NewAggregator()
	for _, s := range ss {
		if err := g.Add(s); err != nil {
			return nil, err
		}
	}
	return g.Build()
}
