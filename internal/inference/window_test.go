package inference

import (
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/packet"
	"repro/internal/rules"
)

// buildAggregate fabricates an aggregate with given (dstIP value, count)
// pairs; all other fields are SYN-signature-exact so a flag question
// matches every row.
func buildAggregate(t *testing.T, rows []struct {
	dst   float64
	count int
}) *Aggregate {
	t.Helper()
	reps := linalg.NewMatrix(len(rows), packet.NumFields)
	counts := make([]int, len(rows))
	refs := make([]CentroidRef, len(rows))
	for i, r := range rows {
		row := reps.Row(i)
		row[packet.FieldProtocol] = packet.Normalize(packet.FieldProtocol, packet.ProtoTCP)
		row[packet.FieldSYN] = 1
		row[packet.FieldDstIP] = r.dst
		counts[i] = r.count
		refs[i] = CentroidRef{MonitorID: 0, Epoch: 0, Centroid: i}
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	return &Aggregate{Representatives: reps, Counts: counts, Refs: refs, TotalPackets: total}
}

func trackedSYNQuestion(t *testing.T, tauC int, window float64) *rules.Question {
	t.Helper()
	r, err := rules.Parse(`alert tcp any any -> any any (flags:S; detection_filter: track by_dst, count 1, seconds 2; sid:1;)`)
	if err != nil {
		t.Fatal(err)
	}
	q, err := rules.Translate(r, nil, rules.DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	q = q.WithCountThreshold(tauC).WithDistanceThreshold(0.05)
	q.TrackWindow = window
	return q
}

func TestTrackedCountPicksDensestWindow(t *testing.T) {
	// Three destination clusters: two at nearly the same dst (a victim),
	// one far away with a larger single count.
	agg := buildAggregate(t, []struct {
		dst   float64
		count int
	}{
		{0.100000, 40},
		{0.100005, 45}, // within the window of the first
		{0.500000, 60},
	})
	q := trackedSYNQuestion(t, 1, 1e-4)
	m := EstimateSimilarity(agg, q)
	if m.MatchedCount != 85 {
		t.Fatalf("window count = %d, want 85 (40+45 at the victim)", m.MatchedCount)
	}
	if len(m.MatchedRows) != 2 {
		t.Fatalf("window rows = %v, want the two victim clusters", m.MatchedRows)
	}
	// Pre-window set must include all three.
	if len(m.AllMatchedRows) != 3 {
		t.Fatalf("all matched = %v, want 3 rows", m.AllMatchedRows)
	}
}

func TestTrackedCountWindowWidthMatters(t *testing.T) {
	agg := buildAggregate(t, []struct {
		dst   float64
		count int
	}{
		{0.10, 30},
		{0.11, 30}, // 0.01 apart
	})
	narrow := trackedSYNQuestion(t, 1, 1e-3)
	if m := EstimateSimilarity(agg, narrow); m.MatchedCount != 30 {
		t.Fatalf("narrow window count = %d, want 30", m.MatchedCount)
	}
	wide := trackedSYNQuestion(t, 1, 0.02)
	if m := EstimateSimilarity(agg, wide); m.MatchedCount != 60 {
		t.Fatalf("wide window count = %d, want 60", m.MatchedCount)
	}
}

func TestTrackedCountEmptyMatchSet(t *testing.T) {
	agg := buildAggregate(t, []struct {
		dst   float64
		count int
	}{{0.1, 10}})
	q := trackedSYNQuestion(t, 1, 1e-4).WithDistanceThreshold(0) // nothing within 0 except exact
	// The built aggregate rows ARE exact for the signature, so distance
	// 0 still matches; force a miss via an impossible protocol pin.
	q.Vector[packet.FieldProtocol] = 1.0
	m := EstimateSimilarity(agg, q)
	if m.MatchedCount != 0 || len(m.MatchedRows) != 0 || m.Matched {
		t.Fatalf("empty match set handled wrong: %+v", m)
	}
}

// Property: the sliding-window maximum equals a brute-force scan over
// all windows anchored at row values.
func TestMaxWindowCountProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(30)
		rows := make([]struct {
			dst   float64
			count int
		}, n)
		for i := range rows {
			rows[i].dst = rng.Float64()
			rows[i].count = 1 + rng.Intn(20)
		}
		reps := linalg.NewMatrix(n, packet.NumFields)
		counts := make([]int, n)
		for i, r := range rows {
			reps.Row(i)[packet.FieldDstIP] = r.dst
			counts[i] = r.count
		}
		agg := &Aggregate{Representatives: reps, Counts: counts}
		width := rng.Float64() * 0.3

		all := make([]int, n)
		for i := range all {
			all[i] = i
		}
		_, got := maxWindowCount(agg, all, packet.FieldDstIP, width)

		// Brute force: for every row as window start, sum counts of
		// rows within [v, v+width].
		best := 0
		for i := range rows {
			lo := rows[i].dst
			sum := 0
			for j := range rows {
				if rows[j].dst >= lo && rows[j].dst <= lo+width {
					sum += rows[j].count
				}
			}
			if sum > best {
				best = sum
			}
		}
		return got == best
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}

// Property: CoreRows is always a subset of MatchedRows, which is a
// subset of AllMatchedRows.
func TestRowSetNestingProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 1 + rng.Intn(40)
		reps := linalg.NewMatrix(n, packet.NumFields)
		counts := make([]int, n)
		for i := 0; i < n; i++ {
			row := reps.Row(i)
			row[packet.FieldProtocol] = packet.Normalize(packet.FieldProtocol, packet.ProtoTCP)
			row[packet.FieldSYN] = 1
			row[packet.FieldDstIP] = rng.Float64()
			counts[i] = 1 + rng.Intn(10)
		}
		agg := &Aggregate{Representatives: reps, Counts: counts}
		q := &rules.Question{
			Vector:            make([]float64, packet.NumFields),
			DistanceThreshold: 0.05,
			CountThreshold:    1,
			TrackBy:           int(packet.FieldDstIP),
			TrackWindow:       rng.Float64() * 0.1,
		}
		for i := range q.Vector {
			q.Vector[i] = rules.Irrelevant
		}
		q.Vector[packet.FieldSYN] = 1
		m := EstimateSimilarity(agg, q)

		inAll := map[int]bool{}
		for _, r := range m.AllMatchedRows {
			inAll[r] = true
		}
		inMatched := map[int]bool{}
		for _, r := range m.MatchedRows {
			if !inAll[r] {
				return false
			}
			inMatched[r] = true
		}
		for _, r := range m.CoreRows {
			if !inMatched[r] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}
