package inference

import (
	"fmt"
	"math/rand"
	"reflect"
	"runtime"
	"testing"

	"repro/internal/rules"
	"repro/internal/summary"
)

// scaleAggregate builds a mixed benign+flood aggregate for the scale
// tests and benchmarks (testing.TB so benchmarks share it).
func scaleAggregate(tb testing.TB, seed int64, packets int) *Aggregate {
	tb.Helper()
	rng := rand.New(rand.NewSource(seed))
	mixed := append(benignHeaders(rng, packets*4/5), synFloodHeaders(rng, packets/5, 0x0A000001)...)
	s, err := summary.NewSummarizer(summary.Config{
		BatchSize: len(mixed), Rank: 12, Centroids: len(mixed) / 5, MinBatch: 1, Seed: 7,
	})
	if err != nil {
		tb.Fatal(err)
	}
	sum, err := s.Summarize(mixed, 0, 0)
	if err != nil {
		tb.Fatal(err)
	}
	agg, err := AggregateSummaries([]*summary.Summary{sum})
	if err != nil {
		tb.Fatal(err)
	}
	return agg
}

// scaleQuestions generates and translates a seeded library.
func scaleQuestions(tb testing.TB, n int, seed int64) []*rules.Question {
	tb.Helper()
	qs, err := rules.GenerateQuestions(rules.GenConfig{Rules: n, Seed: seed}, rules.NewEnvironment(), rules.DefaultTranslateConfig())
	if err != nil {
		tb.Fatal(err)
	}
	if len(qs) != n {
		tb.Fatalf("generated %d questions, want %d", len(qs), n)
	}
	return qs
}

// TestEvaluateAllIndexedEquivalence is the ISSUE 6 acceptance property:
// the indexed sweep is byte-identical to the linear scan — the same
// MatchResult in every field, in the same order — across library
// scales and worker counts.
func TestEvaluateAllIndexedEquivalence(t *testing.T) {
	scales := []int{100, 1000, 10000}
	if testing.Short() {
		scales = []int{100, 1000}
	}
	agg := scaleAggregate(t, 11, 1500)
	for _, n := range scales {
		t.Run(fmt.Sprintf("rules=%d", n), func(t *testing.T) {
			qs := scaleQuestions(t, n, 5)
			ix, err := rules.NewQuestionIndex(qs, nil)
			if err != nil {
				t.Fatal(err)
			}
			want := EvaluateAll(agg, qs)
			cs := Candidates(agg, ix)
			if cs.Count() >= len(qs) {
				t.Fatalf("index pruned nothing (%d/%d candidates)", cs.Count(), len(qs))
			}
			matched := 0
			for _, r := range want {
				if r.Matched {
					matched++
				}
			}
			if matched == 0 {
				t.Fatal("workload has no matching question — equivalence would be vacuous")
			}
			for _, workers := range []int{1, 2, 4, runtime.GOMAXPROCS(0), 0} {
				got := EvaluateAllIndexedParallel(agg, qs, ix, workers)
				if len(got) != len(want) {
					t.Fatalf("workers=%d: %d results, want %d", workers, len(got), len(want))
				}
				for i := range got {
					if !reflect.DeepEqual(got[i], want[i]) {
						t.Fatalf("workers=%d question %d (sid %d): indexed result diverged\nlinear:  %+v\nindexed: %+v",
							workers, i, qs[i].Rule.SID, want[i], got[i])
					}
				}
			}
		})
	}
}

// TestEvaluateAllIndexedNilIndex: a nil index degrades to the linear
// scan instead of pruning anything.
func TestEvaluateAllIndexedNilIndex(t *testing.T) {
	agg := scaleAggregate(t, 12, 500)
	qs := scaleQuestions(t, 200, 6)
	want := EvaluateAll(agg, qs)
	got := EvaluateAllIndexed(agg, qs, nil)
	if !reflect.DeepEqual(got, want) {
		t.Fatal("nil-index evaluation diverged from linear scan")
	}
}

// TestRunFeedbackIndexedEquivalence extends byte-identity through the
// two-stage feedback loop: with the index built at the τ_d2 bound,
// indexed feedback must reproduce the full FeedbackResult — verdicts,
// both stage results, fetch accounting — for every question.
func TestRunFeedbackIndexedEquivalence(t *testing.T) {
	agg := scaleAggregate(t, 13, 1200)
	qs := scaleQuestions(t, 1500, 9)
	cfgs := make([]FeedbackConfig, len(qs))
	maxTau := make([]float64, len(qs))
	for i, q := range qs {
		cfgs[i] = FeedbackConfig{TauD1: q.DistanceThreshold * 0.5, TauD2: q.DistanceThreshold * 2, CountScale2: 0.5}
		maxTau[i] = cfgs[i].TauD2
	}
	ix, err := rules.NewQuestionIndex(qs, maxTau)
	if err != nil {
		t.Fatal(err)
	}
	for i := range qs {
		if !ix.Covers(i, cfgs[i].TauD2) {
			t.Fatalf("question %d: index bound does not cover τ_d2", i)
		}
	}
	cs := Candidates(agg, ix)
	if cs.Count() >= len(qs) {
		t.Fatalf("index pruned nothing (%d/%d candidates)", cs.Count(), len(qs))
	}
	uncertain := 0
	for i, q := range qs {
		want, err := RunFeedback(agg, q, cfgs[i], nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		got, err := RunFeedbackIndexed(agg, q, cfgs[i], nil, nil, cs.Contains(i))
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("question %d (sid %d, candidate=%v): feedback diverged\nlinear:  %+v\nindexed: %+v",
				i, q.Rule.SID, cs.Contains(i), want, got)
		}
		if want.Verdict == VerdictUncertain {
			uncertain++
		}
	}
	if uncertain == 0 {
		t.Fatal("no uncertain verdicts — feedback equivalence would miss the interesting case")
	}
}

// TestEvaluateAllParallelOrderPin10k is the determinism satellite:
// at 10k-rule scale the parallel sweep returns results in exactly the
// sequential order for every worker count.
func TestEvaluateAllParallelOrderPin10k(t *testing.T) {
	n := 10000
	if testing.Short() {
		n = 2000
	}
	agg := scaleAggregate(t, 14, 1000)
	qs := scaleQuestions(t, n, 21)
	want := EvaluateAll(agg, qs)
	for _, workers := range []int{1, 2, 3, 4, 8, runtime.GOMAXPROCS(0), 0} {
		got := EvaluateAllParallel(agg, qs, workers)
		for i := range got {
			if got[i].Question != qs[i] {
				t.Fatalf("workers=%d: result %d is for the wrong question", workers, i)
			}
			if !reflect.DeepEqual(got[i], want[i]) {
				t.Fatalf("workers=%d: result %d diverged from sequential", workers, i)
			}
		}
	}
}

// TestEstimatorScratchReuse pins the scratch-pooling satellite: after
// pool warmup, a pruned question costs one allocation (its result) and
// a matching tracked question stays O(result size) — the per-question
// sort/scratch slices no longer allocate.
func TestEstimatorScratchReuse(t *testing.T) {
	agg := scaleAggregate(t, 15, 1000)
	qs := scaleQuestions(t, 500, 4)
	// Warm the pool and find a question with a non-trivial tracked match.
	var hot *rules.Question
	for _, q := range qs {
		if r := EstimateSimilarity(agg, q); len(r.AllMatchedRows) > 3 && q.TrackBy >= 0 {
			hot = q
		}
	}
	if hot == nil {
		t.Skip("no tracked matching question in workload")
	}
	if got := testing.AllocsPerRun(100, func() { estimatePruned(agg, hot) }); got > 1 {
		t.Errorf("pruned estimate: %.1f allocs/op, want ≤ 1", got)
	}
	if got := testing.AllocsPerRun(100, func() { EstimateSimilarity(agg, hot) }); got > 12 {
		t.Errorf("tracked estimate: %.1f allocs/op, want ≤ 12 (scratch must come from the pool)", got)
	}
}

// benchSizes are the ISSUE 6 sweep points.
var benchSizes = []int{100, 1000, 10000}

// BenchmarkEvaluateAllLinear is the baseline: the unindexed sweep at
// equal centroid count.
func BenchmarkEvaluateAllLinear(b *testing.B) {
	agg := scaleAggregate(b, 16, 1500)
	for _, n := range benchSizes {
		qs := scaleQuestions(b, n, 5)
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EvaluateAll(agg, qs)
			}
		})
	}
}

// BenchmarkEvaluateAllIndexed measures the indexed sweep, including the
// per-epoch candidate-set computation (the index build is per-library,
// not per-epoch, and is measured separately).
func BenchmarkEvaluateAllIndexed(b *testing.B) {
	agg := scaleAggregate(b, 16, 1500)
	for _, n := range benchSizes {
		qs := scaleQuestions(b, n, 5)
		ix, err := rules.NewQuestionIndex(qs, nil)
		if err != nil {
			b.Fatal(err)
		}
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				EvaluateAllIndexed(agg, qs, ix)
			}
		})
	}
}

// BenchmarkQuestionIndexBuild measures the per-library rebuild cost the
// controller pays when the adaptive loop outgrows the indexed bound.
func BenchmarkQuestionIndexBuild(b *testing.B) {
	for _, n := range benchSizes {
		qs := scaleQuestions(b, n, 5)
		b.Run(fmt.Sprintf("rules=%d", n), func(b *testing.B) {
			b.ReportAllocs()
			for i := 0; i < b.N; i++ {
				if _, err := rules.NewQuestionIndex(qs, nil); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
