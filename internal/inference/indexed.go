package inference

import (
	"repro/internal/par"
	"repro/internal/rules"
)

// This file is the inference-side half of the ISSUE 6 question index:
// index-aware twins of EstimateSimilarity / RunFeedback / EvaluateAll
// that skip the O(centroids × fields) scan for questions the index
// proved unmatchable this epoch, while producing byte-identical
// results. The pruned path still runs the estimator's post-scan tail
// (tracked-window narrowing of the empty set, the τ_c compare, the
// variance gate) so that every MatchResult field — not just the alert
// bit — matches the linear sweep exactly.

// Candidates evaluates the index against this aggregate's centroids
// and returns the epoch's candidate set. A nil index returns nil,
// whose Contains is always true — the linear scan.
func Candidates(agg *Aggregate, ix *rules.QuestionIndex) *rules.CandidateSet {
	if ix == nil {
		return nil
	}
	return ix.Candidates(agg.Rows(), agg.Representatives.Row)
}

// EstimateSimilarityIndexed is EstimateSimilarity with a candidacy
// verdict from the question index: candidate == false takes the pruned
// fast path. Callers must only pass false when the index was built
// with a τ bound covering q's evaluation threshold (QuestionIndex.Covers).
func EstimateSimilarityIndexed(agg *Aggregate, q *rules.Question, candidate bool) *MatchResult {
	if !candidate {
		return estimatePruned(agg, q)
	}
	return EstimateSimilarity(agg, q)
}

// RunFeedbackIndexed is RunFeedback with a candidacy verdict. The
// index bound must cover τ_d2 — the widest threshold either stage
// evaluates — for a false verdict to be sound.
func RunFeedbackIndexed(agg *Aggregate, q *rules.Question, cfg FeedbackConfig, fetcher RawPacketFetcher, matcher RawMatcher, candidate bool) (*FeedbackResult, error) {
	return runFeedback(agg, q, cfg, fetcher, matcher, candidate)
}

// EvaluateAllIndexed runs every question against the aggregate through
// the index: one candidate-set computation, then the exact estimator
// on candidates only. ix must have been built over qs in order (entry
// i of the index is qs[i]) with bounds covering each question's
// DistanceThreshold; a nil ix degrades to the linear EvaluateAll.
// Results are byte-identical to EvaluateAll for every input.
func EvaluateAllIndexed(agg *Aggregate, qs []*rules.Question, ix *rules.QuestionIndex) []*MatchResult {
	return EvaluateAllIndexedParallel(agg, qs, ix, 1)
}

// EvaluateAllIndexedParallel is EvaluateAllIndexed fanned out across up
// to workers goroutines (0 = GOMAXPROCS). Like EvaluateAllParallel,
// result i is always the evaluation of qs[i] for every worker count.
func EvaluateAllIndexedParallel(agg *Aggregate, qs []*rules.Question, ix *rules.QuestionIndex, workers int) []*MatchResult {
	cs := Candidates(agg, ix)
	out := make([]*MatchResult, len(qs))
	par.For(len(qs), workers, func(i int) {
		out[i] = EstimateSimilarityIndexed(agg, qs[i], cs.Contains(i))
	})
	return out
}
