package inference

import (
	"cmp"
	"slices"
	"sync"

	"repro/internal/linalg"
	"repro/internal/packet"
	"repro/internal/par"
	"repro/internal/rules"
)

// MatchResult is the outcome of running Algorithm 1 (similarity
// estimation) for one question against one aggregate.
type MatchResult struct {
	// Question is the evaluated question.
	Question *rules.Question
	// Matched reports whether the count of packets behind matching
	// centroids met τ_c.
	Matched bool
	// MatchedCount is Σ c_i over centroids with d_q(x_i) ≤ τ_d.
	MatchedCount int
	// MatchedRows indexes the rows of the aggregate whose centroids
	// matched — the set Q of Algorithm 1.
	MatchedRows []int
	// AllMatchedRows is the full distance-matched set before any
	// tracked-window narrowing — every centroid that looks like the
	// signature, including clusters whose tracked-field value blurred
	// away from the window.
	AllMatchedRows []int
	// FetchRows is the set the feedback loop pulls raw packets for: the
	// matched rows within a widened window around the winning tracked
	// value. Wide enough that clusters contaminated with other
	// destinations (whose centroids blurred off the victim) are still
	// fetched, narrow enough that the fetch stays proportional to the
	// suspicion rather than the epoch. Equal to MatchedRows for
	// untracked questions.
	FetchRows []int
	// CoreRows is the dominant-value subset of MatchedRows along the
	// tracked field: the rows within a micro-window around the single
	// busiest tracked value. Postprocessor variance runs on this purer
	// subset so that benign clusters sharing the tracked window cannot
	// drown the attack's variance signal. Equal to MatchedRows for
	// untracked questions.
	CoreRows []int
	// VariancePassed reports the postprocessor verdict (Algorithm 2)
	// when the question carries a variance check; it is true when no
	// check is configured.
	VariancePassed bool
	// Variance is the measured weighted variance of the checked field
	// over matching representatives (0 when no check is configured).
	Variance float64
}

// Alerted reports whether the match constitutes an alert: the count
// threshold was met and, if a variance check is configured, the variance
// threshold was met too.
func (m *MatchResult) Alerted() bool { return m.Matched && m.VariancePassed }

// EstimateSimilarity runs Algorithm 1: it measures d_q against every
// representative in the aggregate, sums the membership counts of
// matching centroids, and compares against τ_c. When the question
// carries a variance directive, Algorithm 2 runs over the matched set Q.
func EstimateSimilarity(agg *Aggregate, q *rules.Question) *MatchResult {
	return estimateWithThreshold(agg, q, q.DistanceThreshold)
}

// estimateWithThreshold is Algorithm 1 with an explicit τ_d, shared by
// the plain path and the feedback loop's second-stage evaluation.
func estimateWithThreshold(agg *Aggregate, q *rules.Question, tauD float64) *MatchResult {
	res := &MatchResult{Question: q, VariancePassed: true}
	for i := 0; i < agg.Rows(); i++ {
		if q.Distance(agg.Representatives.Row(i)) <= tauD {
			res.MatchedCount += agg.Counts[i]
			res.MatchedRows = append(res.MatchedRows, i)
		}
	}
	return finishEstimate(agg, q, res)
}

// estimatePruned produces the result for a question the index proved
// unmatchable this epoch. It runs the same tail as a scan that found
// nothing — tracked-window narrowing of an empty set, the τ_c compare,
// the variance gate — so an index-pruned result is byte-identical to
// the linear scan's result, whatever the thresholds.
func estimatePruned(agg *Aggregate, q *rules.Question) *MatchResult {
	return finishEstimate(agg, q, &MatchResult{Question: q, VariancePassed: true})
}

// finishEstimate applies the post-scan stages of Algorithm 1 to a
// result whose MatchedRows/MatchedCount hold the distance-matched set:
// tracked-window narrowing, the count threshold, and the Algorithm 2
// variance postprocessor.
func finishEstimate(agg *Aggregate, q *rules.Question, res *MatchResult) *MatchResult {
	res.AllMatchedRows = res.MatchedRows
	res.CoreRows = res.MatchedRows
	res.FetchRows = res.MatchedRows
	if q.TrackBy >= 0 && q.TrackBy < packet.NumFields {
		// "track by_dst" semantics on summaries: the rule fires only
		// when the matched count concentrates on one tracked-field
		// value. The matched set Q narrows to the winning window so
		// the postprocessor analyzes the suspicious subset.
		field := packet.FieldIndex(q.TrackBy)
		w := trackWindow(q)
		rows, count := maxWindowCount(agg, res.MatchedRows, field, w)
		res.MatchedRows = rows
		res.MatchedCount = count
		// The micro-window isolates the single dominant tracked value
		// (pure attack clusters sit exactly on the victim).
		res.CoreRows, _ = maxWindowCount(agg, rows, field, w/10)
		// The fetch window is 50× wider: a cluster holding victim
		// packets plus strays has its centroid pulled at most a few
		// window-widths off the victim.
		res.FetchRows, _ = maxWindowCount(agg, res.AllMatchedRows, field, 50*w)
	}
	res.Matched = res.MatchedCount >= q.CountThreshold
	if q.Variance != nil {
		res.Variance = MatchedVariance(agg, res.CoreRows, q.Variance.Field)
		res.VariancePassed = res.Variance >= q.Variance.Threshold
	}
	return res
}

// trackWindow returns the question's tracking window width with default.
func trackWindow(q *rules.Question) float64 {
	if q.TrackWindow > 0 {
		return q.TrackWindow
	}
	// ≈86k addresses: fine per-destination tracking. Pure attack
	// clusters sit exactly on the victim's value, so a narrow window
	// separates them sharply from the benign background; clusters
	// contaminated with other destinations blur out of the window and
	// their counts are lost — which is precisely the accuracy penalty
	// of under-provisioned k the paper measures (Fig. 4).
	return 2e-5
}

// fv pairs a matched row with its tracked-field value for window sort.
type fv struct {
	row int
	val float64
}

// estimateScratch holds per-call working slices for the hot estimator
// helpers. Only the MatchedRows/FetchRows/CoreRows result slices escape
// into MatchResult; everything else is recycled through scratchPool, so
// per-question cost stays flat across epochs (the allocs/op assertion
// in BenchmarkEvaluateAll pins this).
type estimateScratch struct {
	vals    []fv
	values  []float64
	weights []float64
}

var scratchPool = sync.Pool{New: func() any { return new(estimateScratch) }}

// maxWindowCount finds, over the matched rows sorted by the tracked
// field, the window of the given width with the maximum total membership
// count. It returns the rows inside that window and their count.
func maxWindowCount(agg *Aggregate, rows []int, field packet.FieldIndex, width float64) ([]int, int) {
	if len(rows) == 0 {
		return nil, 0
	}
	sc := scratchPool.Get().(*estimateScratch)
	if cap(sc.vals) < len(rows) {
		sc.vals = make([]fv, len(rows))
	}
	vals := sc.vals[:len(rows)]
	for i, r := range rows {
		vals[i] = fv{row: r, val: agg.Representatives.At(r, int(field))}
	}
	slices.SortFunc(vals, func(a, b fv) int { return cmp.Compare(a.val, b.val) })

	bestLo, bestHi, bestCount := 0, 0, 0
	lo, count := 0, 0
	for hi := 0; hi < len(vals); hi++ {
		count += agg.Counts[vals[hi].row]
		for vals[hi].val-vals[lo].val > width {
			count -= agg.Counts[vals[lo].row]
			lo++
		}
		if count > bestCount {
			bestLo, bestHi, bestCount = lo, hi, count
		}
	}
	out := make([]int, 0, bestHi-bestLo+1)
	for i := bestLo; i <= bestHi; i++ {
		out = append(out, vals[i].row)
	}
	scratchPool.Put(sc)
	slices.Sort(out)
	return out, bestCount
}

// MatchedVariance runs Algorithm 2: the weighted variance of a
// normalized header field over the matched representatives, where each
// representative counts c_i times (the "add x_i(h) c_i times to Z" loop).
func MatchedVariance(agg *Aggregate, rows []int, field packet.FieldIndex) float64 {
	if len(rows) == 0 {
		return 0
	}
	sc := scratchPool.Get().(*estimateScratch)
	if cap(sc.values) < len(rows) {
		sc.values = make([]float64, len(rows))
		sc.weights = make([]float64, len(rows))
	}
	values, weights := sc.values[:len(rows)], sc.weights[:len(rows)]
	for i, r := range rows {
		values[i] = agg.Representatives.At(r, int(field))
		weights[i] = float64(agg.Counts[r])
	}
	v := linalg.WeightedVariance(values, weights)
	scratchPool.Put(sc)
	return v
}

// EvaluateAll runs every question against the aggregate and returns the
// per-question results keyed by attack/rule evaluation order.
func EvaluateAll(agg *Aggregate, qs []*rules.Question) []*MatchResult {
	return EvaluateAllParallel(agg, qs, 1)
}

// EvaluateAllParallel is EvaluateAll with the question×centroid matching
// fanned out across up to workers goroutines (0 = GOMAXPROCS). Each
// question is independent and reads the aggregate immutably, so result i
// is always the evaluation of qs[i] — the output is identical to the
// sequential sweep for every worker count.
func EvaluateAllParallel(agg *Aggregate, qs []*rules.Question, workers int) []*MatchResult {
	out := make([]*MatchResult, len(qs))
	par.For(len(qs), workers, func(i int) {
		out[i] = EstimateSimilarity(agg, qs[i])
	})
	return out
}
