package trafficgen

import (
	"math/rand"
	"testing"

	"repro/internal/linalg"
	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/summary"
)

func TestBackgroundDeterministic(t *testing.T) {
	a := NewBackground(DefaultBackgroundConfig(1))
	b := NewBackground(DefaultBackgroundConfig(1))
	for i := 0; i < 100; i++ {
		if a.Next() != b.Next() {
			t.Fatalf("same seed must generate the same stream (packet %d)", i)
		}
	}
	c := NewBackground(DefaultBackgroundConfig(2))
	same := true
	a2 := NewBackground(DefaultBackgroundConfig(1))
	for i := 0; i < 100; i++ {
		if a2.Next() != c.Next() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds must generate different traces")
	}
}

func TestBackgroundPlausibleTCP(t *testing.T) {
	bg := NewBackground(DefaultBackgroundConfig(3))
	synSeen, ackSeen, finSeen := 0, 0, 0
	for i := 0; i < 5000; i++ {
		h := bg.Next()
		if h.Protocol != packet.ProtoTCP {
			t.Fatalf("packet %d is not TCP", i)
		}
		if h.TotalLength < 40 {
			t.Fatalf("packet %d too short: %d", i, h.TotalLength)
		}
		if h.Flags.Has(packet.FlagSYN) {
			synSeen++
		}
		if h.Flags.Has(packet.FlagACK) {
			ackSeen++
		}
		if h.Flags.Has(packet.FlagFIN) {
			finSeen++
		}
	}
	if synSeen == 0 || ackSeen == 0 || finSeen == 0 {
		t.Fatalf("flag mix unrealistic: syn=%d ack=%d fin=%d", synSeen, ackSeen, finSeen)
	}
	// ACK-carrying packets dominate in real mixes.
	if ackSeen < synSeen {
		t.Fatalf("ACKs (%d) must outnumber SYNs (%d)", ackSeen, synSeen)
	}
}

// The headline structural property: background batches have a low latent
// rank — ~90 % of spectral energy within the top ~14 of 18 singular
// values (Fig. 10 motivates r = 12).
func TestBackgroundLowLatentRank(t *testing.T) {
	bg := NewBackground(DefaultBackgroundConfig(4))
	batch := bg.Batch(1000)
	x := summary.BuildMatrix(batch)
	d, err := linalg.ComputeSVD(x)
	if err != nil {
		t.Fatal(err)
	}
	r90 := d.EnergyRank(0.90)
	if r90 > 14 {
		t.Fatalf("90%% energy needs %d singular values; expected ≤ 14 (Fig. 10)", r90)
	}
	if r90 < 2 {
		t.Fatalf("spectrum degenerate: r90 = %d", r90)
	}
}

func TestAttackGenerators(t *testing.T) {
	for _, id := range rules.AllAttacks {
		a, err := NewAttack(id, AttackConfig{Seed: 1})
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if a.ID() != id {
			t.Fatalf("generator reports %s, want %s", a.ID(), id)
		}
		wantProto := uint8(packet.ProtoTCP)
		if id == rules.AttackUDPFlood {
			wantProto = packet.ProtoUDP
		}
		for i := 0; i < 100; i++ {
			h := a.Next()
			if h.Protocol != wantProto {
				t.Fatalf("%s packet %d has protocol %d, want %d", id, i, h.Protocol, wantProto)
			}
		}
	}
	if _, err := NewAttack("bogus", AttackConfig{}); err == nil {
		t.Fatal("unknown attack must error")
	}
}

func TestSYNFloodShape(t *testing.T) {
	a, _ := NewAttack(rules.AttackSYNFlood, AttackConfig{Seed: 2, Victim: 0x0A000001})
	srcs := map[uint32]bool{}
	for i := 0; i < 500; i++ {
		h := a.Next()
		if !h.Flags.Has(packet.FlagSYN) || h.Flags.Has(packet.FlagACK) {
			t.Fatal("SYN flood packets must be pure SYN")
		}
		if h.DstIP != 0x0A000001 {
			t.Fatal("flood must target the victim")
		}
		srcs[h.SrcIP] = true
	}
	if len(srcs) != 1 {
		t.Fatalf("plain SYN flood must come from one source, saw %d", len(srcs))
	}
}

func TestDistributedSYNFloodSources(t *testing.T) {
	a, _ := NewAttack(rules.AttackDistributedSYNFlood, AttackConfig{Seed: 3, Sources: 200})
	srcs := map[uint32]bool{}
	for i := 0; i < 2000; i++ {
		srcs[a.Next().SrcIP] = true
	}
	if len(srcs) < 150 || len(srcs) > 200 {
		t.Fatalf("distributed flood used %d sources, want ≈200", len(srcs))
	}
}

func TestPortScanSweepsManyPorts(t *testing.T) {
	a, _ := NewAttack(rules.AttackPortScan, AttackConfig{Seed: 4})
	ports := map[uint16]bool{}
	for i := 0; i < 300; i++ {
		ports[a.Next().DstPort] = true
	}
	if len(ports) < 80 {
		t.Fatalf("scan hit only %d distinct ports, want ≥ 80 (Nmap default list)", len(ports))
	}
}

func TestSSHBruteForceTargetsPort22(t *testing.T) {
	a, _ := NewAttack(rules.AttackSSHBruteForce, AttackConfig{Seed: 5})
	for i := 0; i < 200; i++ {
		if h := a.Next(); h.DstPort != 22 {
			t.Fatalf("packet %d targets port %d, want 22", i, h.DstPort)
		}
	}
}

func TestSockstressZeroWindow(t *testing.T) {
	a, _ := NewAttack(rules.AttackSockstress, AttackConfig{Seed: 6})
	zeroWin, syns := 0, 0
	for i := 0; i < 400; i++ {
		h := a.Next()
		if h.Flags.Has(packet.FlagSYN) {
			syns++
		} else if h.Window == 0 && h.Flags.Has(packet.FlagACK) {
			zeroWin++
		}
	}
	if zeroWin == 0 || syns == 0 {
		t.Fatalf("sockstress mix wrong: %d zero-window ACKs, %d SYNs", zeroWin, syns)
	}
	if zeroWin < 2*syns {
		t.Fatalf("steady state must be zero-window ACKs (%d) over SYNs (%d)", zeroWin, syns)
	}
}

func TestMiraiScanPorts(t *testing.T) {
	scan := NewMiraiScan(rand.New(rand.NewSource(7)), AttackConfig{}.withDefaults())
	p23, p2323, other := 0, 0, 0
	dsts := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		h := scan.Next()
		switch h.DstPort {
		case 23:
			p23++
		case 2323:
			p2323++
		default:
			other++
		}
		dsts[h.DstIP] = true
	}
	if other != 0 {
		t.Fatalf("Mirai scan hit %d non-telnet ports", other)
	}
	if p2323 == 0 || p23 < 5*p2323 {
		t.Fatalf("port ratio off: 23→%d, 2323→%d (want ≈10:1)", p23, p2323)
	}
	if len(dsts) < 900 {
		t.Fatalf("scan must sweep addresses broadly, saw %d distinct", len(dsts))
	}
}

func TestMiraiAddBot(t *testing.T) {
	scan := NewMiraiScan(rand.New(rand.NewSource(8)), AttackConfig{}.withDefaults())
	scan.AddBot(42)
	found := false
	for i := 0; i < 200 && !found; i++ {
		found = scan.Next().SrcIP == 42
	}
	if !found {
		t.Fatal("new bot must start scanning")
	}
}

func TestMixerCapsAttackFraction(t *testing.T) {
	bg := NewBackground(DefaultBackgroundConfig(9))
	atk, _ := NewAttack(rules.AttackDistributedSYNFlood, AttackConfig{Seed: 9})
	m := NewMixer(bg, atk, MixConfig{Seed: 9})
	pkts := m.Batch(10000)
	attack := 0
	for _, p := range pkts {
		if p.Label == LabelAttack {
			attack++
			if p.Attack != string(rules.AttackDistributedSYNFlood) {
				t.Fatalf("attack label %q wrong", p.Attack)
			}
		}
	}
	frac := float64(attack) / float64(len(pkts))
	if frac > 0.101 {
		t.Fatalf("attack fraction %.3f exceeds 10%% cap", frac)
	}
	if frac < 0.05 {
		t.Fatalf("attack fraction %.3f too low to be useful", frac)
	}
	produced, attacked := m.Stats()
	if produced != 10000 || attacked != attack {
		t.Fatalf("stats = %d/%d", produced, attacked)
	}
}

func TestMixerSockstressDefaultLower(t *testing.T) {
	bg := NewBackground(DefaultBackgroundConfig(10))
	atk, _ := NewAttack(rules.AttackSockstress, AttackConfig{Seed: 10})
	m := NewMixer(bg, atk, MixConfig{Seed: 10})
	pkts := m.Batch(5000)
	attack := 0
	for _, p := range pkts {
		if p.Label == LabelAttack {
			attack++
		}
	}
	if frac := float64(attack) / 5000; frac > 0.051 {
		t.Fatalf("sockstress fraction %.3f exceeds its stealth cap", frac)
	}
}

func TestMixerNilAttack(t *testing.T) {
	bg := NewBackground(DefaultBackgroundConfig(11))
	m := NewMixer(bg, nil, MixConfig{Seed: 11})
	for _, p := range m.Batch(100) {
		if p.Label != LabelBenign {
			t.Fatal("nil attack must produce pure background")
		}
	}
}

func BenchmarkBackgroundNext(b *testing.B) {
	bg := NewBackground(DefaultBackgroundConfig(1))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		bg.Next()
	}
}

func TestUDPFloodShape(t *testing.T) {
	a, err := NewAttack(rules.AttackUDPFlood, AttackConfig{Seed: 12, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	srcs := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		h := a.Next()
		if h.Protocol != packet.ProtoUDP || h.DstIP != 0x0A000001 {
			t.Fatal("UDP flood must send UDP at the victim")
		}
		if h.Flags != 0 || h.Seq != 0 {
			t.Fatal("UDP packets must not carry TCP fields")
		}
		srcs[h.SrcIP] = true
	}
	if len(srcs) < 150 {
		t.Fatalf("flood used %d sources, want ≈200", len(srcs))
	}
}

func TestBackgroundUDPShare(t *testing.T) {
	cfg := DefaultBackgroundConfig(13)
	cfg.UDPFraction = 0.2
	bg := NewBackground(cfg)
	udp := 0
	for i := 0; i < 5000; i++ {
		if bg.Next().Protocol == packet.ProtoUDP {
			udp++
		}
	}
	frac := float64(udp) / 5000
	if frac < 0.12 || frac > 0.28 {
		t.Fatalf("UDP share %.3f, want ≈0.20", frac)
	}
	// Default config stays TCP-only (the paper's evaluation substrate).
	bg2 := NewBackground(DefaultBackgroundConfig(13))
	for i := 0; i < 2000; i++ {
		if bg2.Next().Protocol != packet.ProtoTCP {
			t.Fatal("default background must be TCP-only")
		}
	}
}
