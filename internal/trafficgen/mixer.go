package trafficgen

import (
	"math/rand"

	"repro/internal/rules"
)

// MixConfig controls how attack traffic is blended into background
// traffic, reproducing §8's methodology: attack volume is throttled to a
// cap of the overall traffic (10 % for all attacks except Sockstress,
// which is stealthy and needs far fewer packets).
type MixConfig struct {
	// Seed drives the interleaving.
	Seed int64
	// AttackFraction caps the attack share of total packets (0.10 in
	// the paper). Zero selects the per-attack default.
	AttackFraction float64
}

// defaultAttackFraction returns the paper's cap for an attack.
func defaultAttackFraction(id rules.AttackID) float64 {
	if id == rules.AttackSockstress {
		// Sockstress succeeds with a trickle; 5 % keeps it stealthy
		// (half the cap of the volumetric attacks) while its
		// zero-window mass stays observable in a batch.
		return 0.05
	}
	return 0.10
}

// Mixer interleaves one attack into a background stream at a capped
// rate, tracking ground truth labels.
type Mixer struct {
	bg     *Background
	attack Attack
	rng    *rand.Rand
	frac   float64

	produced int
	attacked int
}

// NewMixer builds a mixer. A nil attack produces pure background.
func NewMixer(bg *Background, attack Attack, cfg MixConfig) *Mixer {
	frac := cfg.AttackFraction
	if frac <= 0 {
		if attack != nil {
			frac = defaultAttackFraction(attack.ID())
		}
	}
	if frac > 1 {
		frac = 1
	}
	return &Mixer{bg: bg, attack: attack, rng: rand.New(rand.NewSource(cfg.Seed)), frac: frac}
}

// Next produces the next labeled packet. The attack share is enforced as
// a hard cap: an attack packet is only emitted while attacked/produced
// stays at or below the configured fraction, mirroring the paper's
// quota-enforcing attack scripts.
func (m *Mixer) Next() LabeledPacket {
	m.produced++
	if m.attack != nil {
		withinQuota := float64(m.attacked+1)/float64(m.produced) <= m.frac
		if withinQuota && m.rng.Float64() < m.frac*1.5 {
			m.attacked++
			return LabeledPacket{Header: m.attack.Next(), Label: LabelAttack, Attack: string(m.attack.ID())}
		}
	}
	return LabeledPacket{Header: m.bg.Next(), Label: LabelBenign}
}

// Batch produces n labeled packets.
func (m *Mixer) Batch(n int) []LabeledPacket {
	out := make([]LabeledPacket, n)
	for i := range out {
		out[i] = m.Next()
	}
	return out
}

// Stats reports the number of packets produced and how many were attack
// packets.
func (m *Mixer) Stats() (produced, attacked int) { return m.produced, m.attacked }
