// corpus.go grows the generator set beyond the paper's §8 evaluation
// with the scenario-corpus attack families: amplification/reflection
// DDoS, slowloris/slow-read, the inverse-flag stealth-scan family, a
// bulk-exfiltration channel, the multi-stage campaign that chains them
// across epochs, and the flash-crowd false-positive trap. Each follows
// the same contract as the originals: a seeded generator whose stream
// is a pure function of its AttackConfig.
package trafficgen

import (
	"math/rand"

	"repro/internal/packet"
	"repro/internal/rules"
)

// reflectionFlood emits amplification-attack *responses*: large UDP
// datagrams from many reflector servers (DNS, and a minority of NTP)
// converging on the victim whose address the attacker spoofed in the
// requests. The observable signature is the reflectors' well-known
// source port and the datagram size; the destination port is the random
// ephemeral port the spoofed requests carried.
type reflectionFlood struct {
	rng        *rand.Rand
	cfg        AttackConfig
	reflectors []uint32
}

func (a *reflectionFlood) ID() rules.AttackID { return rules.AttackReflection }

func (a *reflectionFlood) Next() packet.Header {
	// 9:1 DNS to NTP, roughly the reflector mix of recorded carpet
	// attacks; amplified answers fill the path MTU.
	srcPort := uint16(53)
	length := uint16(1200 + a.rng.Intn(280))
	if a.rng.Intn(10) == 0 {
		srcPort = 123
		length = 468 // NTP monlist response fragments are smaller
	}
	return packet.Header{
		SrcIP:       a.reflectors[a.rng.Intn(len(a.reflectors))],
		DstIP:       a.cfg.Victim,
		Protocol:    packet.ProtoUDP,
		TTL:         uint8(48 + a.rng.Intn(16)),
		TotalLength: length,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     srcPort,
		DstPort:     uint16(1024 + a.rng.Intn(64512)),
	}
}

// slowloris holds many HTTP connections to the victim open: a trickle of
// new handshakes, zero-window keepalive ACKs (the slow-read variant),
// and occasional one-line partial-header segments (classic slowloris).
// Unlike a flood it needs only a few hundred live connections, so the
// per-victim count semantics mirror Sockstress, not the volumetric
// rules.
type slowloris struct {
	rng   *rand.Rand
	cfg   AttackConfig
	conns []heldConn
	phase int
}

type heldConn struct {
	src     uint32
	srcPort uint16
	seq     uint32
}

// slowlorisMaxConns bounds the held-connection table, matching the tool
// defaults (a few hundred sockets exhaust a stock Apache worker pool).
const slowlorisMaxConns = 256

func (a *slowloris) ID() rules.AttackID { return rules.AttackSlowloris }

func (a *slowloris) Next() packet.Header {
	a.phase++
	// Open a new connection every few packets until the table is full;
	// the steady state is keepalives on held connections.
	if len(a.conns) < slowlorisMaxConns && (len(a.conns) == 0 || a.phase%5 == 0) {
		c := heldConn{
			src:     a.rng.Uint32(),
			srcPort: uint16(1024 + a.rng.Intn(64512)),
			seq:     a.rng.Uint32(),
		}
		a.conns = append(a.conns, c)
		return packet.Header{
			SrcIP:       c.src,
			DstIP:       a.cfg.Victim,
			Protocol:    packet.ProtoTCP,
			TTL:         64,
			TotalLength: 40,
			IPID:        uint16(a.rng.Intn(65536)),
			SrcPort:     c.srcPort,
			DstPort:     a.cfg.VictimPort,
			Seq:         c.seq,
			DataOffset:  5,
			Flags:       packet.FlagSYN,
			Window:      16384,
		}
	}
	c := &a.conns[a.rng.Intn(len(a.conns))]
	h := packet.Header{
		SrcIP:       c.src,
		DstIP:       a.cfg.Victim,
		Protocol:    packet.ProtoTCP,
		TTL:         64,
		TotalLength: 40,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     c.srcPort,
		DstPort:     a.cfg.VictimPort,
		Seq:         c.seq,
		Ack:         a.rng.Uint32(),
		DataOffset:  5,
		Flags:       packet.FlagACK,
		Window:      0,
	}
	// One in six keepalives carries a partial header line ("X-a: b\r\n")
	// instead of a bare zero-window ACK.
	if a.rng.Intn(6) == 0 {
		h.Flags |= packet.FlagPSH
		h.TotalLength = uint16(45 + a.rng.Intn(8))
		c.seq += uint32(h.TotalLength - 40)
	}
	return h
}

// StealthVariant selects the probe shape of the inverse-flag scan
// family.
type StealthVariant string

// Stealth-scan variants (§8-style sweep of the victim /24). FIN and
// Xmas probes project onto the same question vector (PSH/URG are
// outside the 18 summarized fields) and are detectable by the flags:F
// scenario rule; NULL and idle probes are evasion shapes the rule
// grammar cannot name, generated for coverage of the undetected tail.
const (
	StealthFIN  StealthVariant = "fin"
	StealthXmas StealthVariant = "xmas"
	StealthNull StealthVariant = "null"
	StealthIdle StealthVariant = "idle"
)

// StealthScan sweeps the victim /24 with inverse-flag probes across the
// well-known port list, from a rotating set of scanners (the idle
// variant instead spoofs every probe from a single zombie host whose
// sequential IPID leak the scanner reads back).
type StealthScan struct {
	rng     *rand.Rand
	cfg     AttackConfig
	variant StealthVariant
	sources []uint32
	idx     int
	// zombieIPID is the idle variant's sequentially incrementing IP ID,
	// the side channel the scan reads.
	zombieIPID uint16
}

// NewStealthScan builds a stealth scanner of the given variant.
func NewStealthScan(rng *rand.Rand, cfg AttackConfig, variant StealthVariant) *StealthScan {
	cfg = cfg.withDefaults()
	return &StealthScan{rng: rng, cfg: cfg, variant: variant, sources: randomSources(rng, cfg.Sources)}
}

// ID implements Attack.
func (a *StealthScan) ID() rules.AttackID { return rules.AttackStealthScan }

// Next implements Attack.
func (a *StealthScan) Next() packet.Header {
	port := nmapTopPorts[a.idx%len(nmapTopPorts)]
	a.idx++
	h := packet.Header{
		DstIP:       (a.cfg.Victim &^ 0xFF) | uint32(a.rng.Intn(256)),
		Protocol:    packet.ProtoTCP,
		TTL:         48,
		TotalLength: 40,
		IPID:        uint16(a.rng.Intn(65536)),
		DstPort:     port,
		Seq:         a.rng.Uint32(),
		DataOffset:  5,
		Window:      1024,
	}
	src := a.sources[a.rng.Intn(len(a.sources))]
	h.SrcIP = src
	h.SrcPort = uint16(33000 + src%1024)
	switch a.variant {
	case StealthXmas:
		h.Flags = packet.FlagFIN | packet.FlagPSH | packet.FlagURG
	case StealthNull:
		h.Flags = 0
	case StealthIdle:
		// Every probe appears to come from the zombie; its IP ID counts
		// up by one per packet sent, which is the whole point.
		a.zombieIPID++
		h.SrcIP = a.sources[0]
		h.SrcPort = 33000
		h.IPID = a.zombieIPID
		h.Flags = packet.FlagSYN
	default: // StealthFIN
		h.Flags = packet.FlagFIN
	}
	return h
}

// exfilCollectorIP and exfilCollectorPort are the fixed drop point of
// the exfiltration channel: a staging server outside the monitored
// network (198.51.100.20:4444, the scenario rule's pinned port).
const (
	exfilCollectorIP   = uint32(0xC6336414)
	exfilCollectorPort = uint16(4444)
)

// exfiltration is a bulk transfer from one compromised home-net host
// (the configured victim) to the fixed external collection point:
// sustained MTU-filling PSH/ACK segments on a single long-lived flow,
// the final stage of the multi-stage campaign.
type exfiltration struct {
	rng     *rand.Rand
	cfg     AttackConfig
	srcPort uint16
	seq     uint32
	phase   int
}

func (a *exfiltration) ID() rules.AttackID { return rules.AttackExfiltration }

func (a *exfiltration) Next() packet.Header {
	if a.srcPort == 0 {
		a.srcPort = uint16(1024 + a.rng.Intn(64512))
		a.seq = a.rng.Uint32()
	}
	h := packet.Header{
		SrcIP:      a.cfg.Victim,
		DstIP:      exfilCollectorIP,
		Protocol:   packet.ProtoTCP,
		TTL:        64,
		IPID:       uint16(a.rng.Intn(65536)),
		SrcPort:    a.srcPort,
		DstPort:    exfilCollectorPort,
		Seq:        a.seq,
		Ack:        a.rng.Uint32(),
		DataOffset: 5,
		Window:     29200,
	}
	if a.phase == 0 {
		h.Flags = packet.FlagSYN
		h.TotalLength = 40
		h.Ack = 0
	} else {
		h.Flags = packet.FlagACK | packet.FlagPSH
		h.TotalLength = 1500
		a.seq += uint32(h.TotalLength - 40)
	}
	a.phase++
	return h
}

// Campaign chains attack stages into one multi-stage intrusion staged
// across epochs: reconnaissance port scan, SSH brute-force infection of
// the victim, then bulk exfiltration from it. ID reports the stage the
// most recent packet belongs to, so a Mixer labels every packet with
// its own stage even across transitions.
type Campaign struct {
	stages   []Attack
	stageLen int
	idx      int
	emitted  int
}

// CampaignStages lists the stage attack IDs in order.
var CampaignStages = []rules.AttackID{
	rules.AttackPortScan, rules.AttackSSHBruteForce, rules.AttackExfiltration,
}

// NewCampaign builds the three-stage campaign; each stage emits
// stageLen packets before the next begins (the last runs unbounded).
// Stage generators draw from per-stage seeds so the campaign stream
// stays a pure function of cfg.Seed.
func NewCampaign(cfg AttackConfig, stageLen int) (*Campaign, error) {
	cfg = cfg.withDefaults()
	if stageLen < 1 {
		stageLen = 400
	}
	c := &Campaign{stageLen: stageLen}
	for i, id := range CampaignStages {
		scfg := cfg
		scfg.Seed = cfg.Seed + int64(i)*1000003
		a, err := NewAttack(id, scfg)
		if err != nil {
			return nil, err
		}
		c.stages = append(c.stages, a)
	}
	return c, nil
}

// Stage returns the zero-based index of the current stage.
func (c *Campaign) Stage() int { return c.idx }

// ID implements Attack, naming the current stage.
func (c *Campaign) ID() rules.AttackID { return c.stages[c.idx].ID() }

// Next implements Attack. The stage advances before the packet is
// drawn, so a subsequent ID call always names the stage of the packet
// just emitted (the Mixer evaluates Next then ID, left to right).
func (c *Campaign) Next() packet.Header {
	if c.idx < len(c.stages)-1 && c.emitted >= c.stageLen {
		c.idx++
		c.emitted = 0
	}
	c.emitted++
	return c.stages[c.idx].Next()
}

// FlashCrowd is the false-positive trap: a benign surge of successful
// connections from many clients to one suddenly popular home-net server
// — a news link, a game patch. The mix is dominated by established-flow
// data in both directions with only the natural share of handshake
// SYNs, which is exactly what separates a crowd from a flood; a
// detector that alerts on it is scored as a false positive. It is
// deliberately not an Attack: its packets carry no attack label.
type FlashCrowd struct {
	rng     *rand.Rand
	cfg     AttackConfig
	clients []uint32
}

// NewFlashCrowd builds the surge generator aimed at cfg.Victim.
func NewFlashCrowd(cfg AttackConfig) *FlashCrowd {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	return &FlashCrowd{rng: rng, cfg: cfg, clients: randomSources(rng, cfg.Sources)}
}

// Next produces the next surge packet.
func (f *FlashCrowd) Next() packet.Header {
	h := packet.Header{
		Protocol:   packet.ProtoTCP,
		TTL:        uint8(48 + f.rng.Intn(80)),
		IPID:       uint16(f.rng.Intn(65536)),
		Seq:        f.rng.Uint32(),
		DataOffset: 5,
		Window:     uint16(8192 + f.rng.Intn(57000)),
	}
	client := f.clients[f.rng.Intn(len(f.clients))]
	clientPort := uint16(1024 + f.rng.Intn(64512))
	r := f.rng.Float64()
	switch {
	case r < 0.12: // client handshake SYN
		h.SrcIP, h.DstIP = client, f.cfg.Victim
		h.SrcPort, h.DstPort = clientPort, f.cfg.VictimPort
		h.Flags = packet.FlagSYN
		h.TotalLength = 40
	case r < 0.24: // server SYN/ACK
		h.SrcIP, h.DstIP = f.cfg.Victim, client
		h.SrcPort, h.DstPort = f.cfg.VictimPort, clientPort
		h.Flags = packet.FlagSYN | packet.FlagACK
		h.Ack = f.rng.Uint32()
		h.TotalLength = 40
	case r < 0.55: // client request data
		h.SrcIP, h.DstIP = client, f.cfg.Victim
		h.SrcPort, h.DstPort = clientPort, f.cfg.VictimPort
		h.Flags = packet.FlagACK
		if f.rng.Float64() < 0.5 {
			h.Flags |= packet.FlagPSH
		}
		h.Ack = f.rng.Uint32()
		h.TotalLength = uint16(60 + f.rng.Intn(500))
	default: // server response data, the bulk of a crowd
		h.SrcIP, h.DstIP = f.cfg.Victim, client
		h.SrcPort, h.DstPort = f.cfg.VictimPort, clientPort
		h.Flags = packet.FlagACK
		if f.rng.Float64() < 0.4 {
			h.Flags |= packet.FlagPSH
		}
		h.Ack = f.rng.Uint32()
		h.TotalLength = uint16(200 + f.rng.Intn(1200))
	}
	return h
}
