package trafficgen

import (
	"fmt"
	"math/rand"

	"repro/internal/packet"
	"repro/internal/rules"
)

// AttackConfig parameterizes an attack generator.
type AttackConfig struct {
	// Seed drives the generator.
	Seed int64
	// Victim is the target address (defaults to a host in 10/8).
	Victim uint32
	// VictimPort is the targeted service port where applicable.
	VictimPort uint16
	// Sources is the number of distinct attacking addresses for
	// distributed attacks. The paper uses ≈200 (§8).
	Sources int
}

func (c AttackConfig) withDefaults() AttackConfig {
	if c.Victim == 0 {
		c.Victim = 0x0A00002A // 10.0.0.42
	}
	if c.VictimPort == 0 {
		c.VictimPort = 80
	}
	if c.Sources <= 0 {
		c.Sources = 200
	}
	return c
}

// Attack generates labeled attack packets.
type Attack interface {
	// ID identifies the attack.
	ID() rules.AttackID
	// Next produces the next attack packet.
	Next() packet.Header
}

// NewAttack constructs the named attack generator.
func NewAttack(id rules.AttackID, cfg AttackConfig) (Attack, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	switch id {
	case rules.AttackSYNFlood:
		return &synFlood{rng: rng, cfg: cfg, distributed: false}, nil
	case rules.AttackDistributedSYNFlood:
		return &synFlood{rng: rng, cfg: cfg, distributed: true, sources: randomSources(rng, cfg.Sources)}, nil
	case rules.AttackPortScan:
		return newPortScan(rng, cfg), nil
	case rules.AttackSSHBruteForce:
		return &sshBruteForce{rng: rng, cfg: cfg, sources: randomSources(rng, cfg.Sources)}, nil
	case rules.AttackSockstress:
		return &sockstress{rng: rng, cfg: cfg, sources: randomSources(rng, cfg.Sources)}, nil
	case rules.AttackMiraiScan:
		return NewMiraiScan(rng, cfg), nil
	case rules.AttackUDPFlood:
		return &udpFlood{rng: rng, cfg: cfg, sources: randomSources(rng, cfg.Sources)}, nil
	case rules.AttackReflection:
		return &reflectionFlood{rng: rng, cfg: cfg, reflectors: randomSources(rng, cfg.Sources)}, nil
	case rules.AttackSlowloris:
		return &slowloris{rng: rng, cfg: cfg}, nil
	case rules.AttackStealthScan:
		return NewStealthScan(rng, cfg, StealthFIN), nil
	case rules.AttackExfiltration:
		return &exfiltration{rng: rng, cfg: cfg}, nil
	default:
		return nil, fmt.Errorf("trafficgen: unknown attack %q", id)
	}
}

// randomSources draws n attacker addresses spread across many subnets so
// distributed attack traffic enters the network at different gateways and
// traverses different monitors (§8).
func randomSources(rng *rand.Rand, n int) []uint32 {
	out := make([]uint32, n)
	for i := range out {
		out[i] = rng.Uint32()
	}
	return out
}

// synFlood floods the victim with SYNs, optionally from many sources.
type synFlood struct {
	rng         *rand.Rand
	cfg         AttackConfig
	distributed bool
	sources     []uint32
}

func (a *synFlood) ID() rules.AttackID {
	if a.distributed {
		return rules.AttackDistributedSYNFlood
	}
	return rules.AttackSYNFlood
}

func (a *synFlood) Next() packet.Header {
	src := uint32(0xDEAD0001) // fixed single attacker
	if a.distributed {
		src = a.sources[a.rng.Intn(len(a.sources))]
	}
	// Flood tools (hping-style) send minimal, uniform SYNs: constant
	// TTL and window, randomized source port and sequence number.
	return packet.Header{
		SrcIP:       src,
		DstIP:       a.cfg.Victim,
		Protocol:    packet.ProtoTCP,
		TTL:         64,
		TotalLength: 40,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     uint16(1024 + a.rng.Intn(64512)),
		DstPort:     a.cfg.VictimPort,
		Seq:         a.rng.Uint32(),
		DataOffset:  5,
		Flags:       packet.FlagSYN,
		Window:      512,
	}
}

// portScan sweeps Nmap's default-style well-known port list across the
// victim network from a rotating set of scanners.
type portScan struct {
	rng     *rand.Rand
	cfg     AttackConfig
	ports   []uint16
	idx     int
	sources []uint32
}

// nmapTopPorts approximates Nmap's default top-ports list: the classic
// well-known services a default scan probes (§8 uses "those defaults").
var nmapTopPorts = []uint16{
	7, 9, 13, 21, 22, 23, 25, 26, 37, 53, 79, 80, 81, 88, 106, 110, 111,
	113, 119, 135, 139, 143, 144, 179, 199, 389, 427, 443, 444, 445, 465,
	513, 514, 515, 543, 544, 548, 554, 587, 631, 646, 873, 990, 993, 995,
	1025, 1026, 1027, 1028, 1029, 1110, 1433, 1720, 1723, 1755, 1900,
	2000, 2001, 2049, 2121, 2717, 3000, 3128, 3306, 3389, 3986, 4899,
	5000, 5009, 5051, 5060, 5101, 5190, 5357, 5432, 5631, 5666, 5800,
	5900, 6000, 6001, 6646, 7070, 8000, 8008, 8009, 8080, 8081, 8443,
	8888, 9100, 9999, 10000, 32768, 49152, 49153, 49154, 49155, 49156,
	49157,
}

func newPortScan(rng *rand.Rand, cfg AttackConfig) *portScan {
	return &portScan{rng: rng, cfg: cfg, ports: nmapTopPorts, sources: randomSources(rng, cfg.Sources)}
}

func (a *portScan) ID() rules.AttackID { return rules.AttackPortScan }

func (a *portScan) Next() packet.Header {
	port := a.ports[a.idx%len(a.ports)]
	a.idx++
	// Scan across the victim's /24.
	dst := (a.cfg.Victim &^ 0xFF) | uint32(a.rng.Intn(256))
	// Nmap SYN probes: constant TTL and window, stable source port
	// per scanning host within a run.
	src := a.sources[a.rng.Intn(len(a.sources))]
	return packet.Header{
		SrcIP:       src,
		DstIP:       dst,
		Protocol:    packet.ProtoTCP,
		TTL:         48,
		TotalLength: 40,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     uint16(33000 + src%1024),
		DstPort:     port,
		Seq:         a.rng.Uint32(),
		DataOffset:  5,
		Flags:       packet.FlagSYN,
		Window:      1024,
	}
}

// sshBruteForce hammers port 22 on the victim from many sources with
// short connection attempts.
type sshBruteForce struct {
	rng     *rand.Rand
	cfg     AttackConfig
	sources []uint32
	phase   int
}

func (a *sshBruteForce) ID() rules.AttackID { return rules.AttackSSHBruteForce }

func (a *sshBruteForce) Next() packet.Header {
	// Brute-force tools reconnect from the same hosts with the same
	// client stack: constant TTL and initial window.
	h := packet.Header{
		SrcIP:       a.sources[a.rng.Intn(len(a.sources))],
		DstIP:       a.cfg.Victim,
		Protocol:    packet.ProtoTCP,
		TTL:         64,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     uint16(1024 + a.rng.Intn(64512)),
		DstPort:     22,
		Seq:         a.rng.Uint32(),
		DataOffset:  5,
		Window:      16384,
		TotalLength: 40,
	}
	// Alternate SYN and short login-attempt data segments.
	if a.phase%3 == 0 {
		h.Flags = packet.FlagSYN
	} else {
		h.Flags = packet.FlagACK | packet.FlagPSH
		h.Ack = a.rng.Uint32()
		h.TotalLength = uint16(60 + a.rng.Intn(80))
	}
	a.phase++
	return h
}

// sockstress completes handshakes and then advertises a zero window,
// pinning server-side connections open (§8: "completes the TCP handshake
// and sets the TCP window size to 0").
type sockstress struct {
	rng     *rand.Rand
	cfg     AttackConfig
	sources []uint32
	phase   int
}

func (a *sockstress) ID() rules.AttackID { return rules.AttackSockstress }

func (a *sockstress) Next() packet.Header {
	// The sockstress tool maintains its connection table from fixed
	// client hosts with a uniform stack (constant TTL).
	h := packet.Header{
		SrcIP:       a.sources[a.rng.Intn(len(a.sources))],
		DstIP:       a.cfg.Victim,
		Protocol:    packet.ProtoTCP,
		TTL:         64,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     uint16(1024 + a.rng.Intn(64512)),
		DstPort:     a.cfg.VictimPort,
		Seq:         a.rng.Uint32(),
		Ack:         a.rng.Uint32(),
		DataOffset:  5,
		TotalLength: 40,
	}
	// One SYN for every few zero-window ACKs: the stealthy steady state
	// is the zero-window keepalive.
	if a.phase%4 == 0 {
		h.Flags = packet.FlagSYN
		h.Window = 16384
		h.Ack = 0
	} else {
		h.Flags = packet.FlagACK
		h.Window = 0
	}
	a.phase++
	return h
}

// MiraiScan reproduces the Mirai bot's scanning behaviour: SYN probes
// aimed at telnet ports 23 and (one in ten) 2323 across random addresses,
// the signature found in the published source (scanner.c, §2).
type MiraiScan struct {
	rng *rand.Rand
	cfg AttackConfig
	// InfectedSources is the current bot population; scans originate
	// from these addresses. Starts with one patient-zero source.
	InfectedSources []uint32
}

// NewMiraiScan builds the scan generator with a single initial bot.
func NewMiraiScan(rng *rand.Rand, cfg AttackConfig) *MiraiScan {
	cfg = cfg.withDefaults()
	return &MiraiScan{rng: rng, cfg: cfg, InfectedSources: []uint32{0xC0A86401}}
}

// ID implements Attack.
func (a *MiraiScan) ID() rules.AttackID { return rules.AttackMiraiScan }

// AddBot registers a newly infected device as a scan source.
func (a *MiraiScan) AddBot(addr uint32) { a.InfectedSources = append(a.InfectedSources, addr) }

// Next implements Attack.
func (a *MiraiScan) Next() packet.Header {
	port := uint16(23)
	if a.rng.Intn(10) == 0 {
		port = 2323 // one-in-ten alternate port, per the Mirai source
	}
	dst := a.rng.Uint32() // scans the whole v4 space
	return packet.Header{
		SrcIP:       a.InfectedSources[a.rng.Intn(len(a.InfectedSources))],
		DstIP:       dst,
		Protocol:    packet.ProtoTCP,
		TTL:         64,
		TotalLength: 40,
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     uint16(1024 + a.rng.Intn(64512)),
		DstPort:     port,
		Seq:         dst, // Mirai sets seq = destination address (scanner.c)
		DataOffset:  5,
		Flags:       packet.FlagSYN,
		Window:      5840,
	}
}

// udpFlood blasts the victim with large UDP datagrams from many sources
// — the volumetric reflection/flood traffic ISPs scrub most often.
type udpFlood struct {
	rng     *rand.Rand
	cfg     AttackConfig
	sources []uint32
}

func (a *udpFlood) ID() rules.AttackID { return rules.AttackUDPFlood }

func (a *udpFlood) Next() packet.Header {
	return packet.Header{
		SrcIP:       a.sources[a.rng.Intn(len(a.sources))],
		DstIP:       a.cfg.Victim,
		Protocol:    packet.ProtoUDP,
		TTL:         64,
		TotalLength: 1028, // tool-typical fixed large datagram
		IPID:        uint16(a.rng.Intn(65536)),
		SrcPort:     uint16(1024 + a.rng.Intn(64512)),
		DstPort:     a.cfg.VictimPort,
	}
}
