package trafficgen

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
)

// TestCorpusGeneratorsDeterministic pins the generator contract for
// every scenario-corpus family: the stream is a pure function of the
// seed (same seed ⇒ byte-identical headers), and seeds actually matter.
func TestCorpusGeneratorsDeterministic(t *testing.T) {
	builders := []struct {
		name string
		make func(t *testing.T, seed int64) func() packet.Header
	}{
		{"reflection", func(t *testing.T, seed int64) func() packet.Header {
			a, err := NewAttack(rules.AttackReflection, AttackConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return a.Next
		}},
		{"slowloris", func(t *testing.T, seed int64) func() packet.Header {
			a, err := NewAttack(rules.AttackSlowloris, AttackConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return a.Next
		}},
		{"exfiltration", func(t *testing.T, seed int64) func() packet.Header {
			a, err := NewAttack(rules.AttackExfiltration, AttackConfig{Seed: seed})
			if err != nil {
				t.Fatal(err)
			}
			return a.Next
		}},
		{"stealth_fin", func(t *testing.T, seed int64) func() packet.Header {
			return NewStealthScan(rand.New(rand.NewSource(seed)), AttackConfig{Seed: seed}, StealthFIN).Next
		}},
		{"stealth_idle", func(t *testing.T, seed int64) func() packet.Header {
			return NewStealthScan(rand.New(rand.NewSource(seed)), AttackConfig{Seed: seed}, StealthIdle).Next
		}},
		{"campaign", func(t *testing.T, seed int64) func() packet.Header {
			c, err := NewCampaign(AttackConfig{Seed: seed}, 50)
			if err != nil {
				t.Fatal(err)
			}
			return c.Next
		}},
		{"flash_crowd", func(t *testing.T, seed int64) func() packet.Header {
			return NewFlashCrowd(AttackConfig{Seed: seed}).Next
		}},
	}
	for _, b := range builders {
		t.Run(b.name, func(t *testing.T) {
			x, y := b.make(t, 1), b.make(t, 1)
			for i := 0; i < 500; i++ {
				if x() != y() {
					t.Fatalf("same seed diverges at packet %d", i)
				}
			}
			x2, z := b.make(t, 1), b.make(t, 2)
			same := true
			for i := 0; i < 500; i++ {
				if x2() != z() {
					same = false
				}
			}
			if same {
				t.Fatal("different seeds must generate different traces")
			}
		})
	}
}

func TestReflectionFloodShape(t *testing.T) {
	a, err := NewAttack(rules.AttackReflection, AttackConfig{Seed: 30, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	dns, ntp := 0, 0
	reflectors := map[uint32]bool{}
	for i := 0; i < 1000; i++ {
		h := a.Next()
		if h.Protocol != packet.ProtoUDP {
			t.Fatalf("packet %d not UDP", i)
		}
		// The spoofed-victim signature: every amplified response
		// converges on the victim as destination.
		if h.DstIP != 0x0A000001 {
			t.Fatalf("packet %d dst %08x, want the spoofed victim", i, h.DstIP)
		}
		switch h.SrcPort {
		case 53:
			dns++
			if h.TotalLength < 1200 {
				t.Fatalf("DNS response length %d below amplified size", h.TotalLength)
			}
		case 123:
			ntp++
		default:
			t.Fatalf("packet %d from source port %d, want a reflector service port", i, h.SrcPort)
		}
		reflectors[h.SrcIP] = true
	}
	if ntp == 0 || dns < 5*ntp {
		t.Fatalf("reflector mix off: dns=%d ntp=%d (want ≈9:1)", dns, ntp)
	}
	if len(reflectors) < 100 {
		t.Fatalf("only %d reflectors, a carpet attack uses many", len(reflectors))
	}
}

func TestSlowlorisShape(t *testing.T) {
	a, err := NewAttack(rules.AttackSlowloris, AttackConfig{Seed: 31, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	syns, keepalives := 0, 0
	conns := map[uint64]bool{}
	for i := 0; i < 2000; i++ {
		h := a.Next()
		if h.DstIP != 0x0A000001 || h.DstPort != 80 {
			t.Fatalf("packet %d must target the victim web server", i)
		}
		conns[uint64(h.SrcIP)<<16|uint64(h.SrcPort)] = true
		if h.Flags.Has(packet.FlagSYN) {
			syns++
			continue
		}
		keepalives++
		// The slow-read signature: held connections advertise a zero
		// receive window on every keepalive.
		if !h.Flags.Has(packet.FlagACK) || h.Window != 0 {
			t.Fatalf("packet %d is neither handshake nor zero-window keepalive", i)
		}
	}
	if syns == 0 || keepalives < 2*syns {
		t.Fatalf("steady state must be keepalives: %d SYNs, %d keepalives", syns, keepalives)
	}
	if len(conns) > slowlorisMaxConns {
		t.Fatalf("%d connections exceed the tool's table of %d", len(conns), slowlorisMaxConns)
	}
	if len(conns) < 100 {
		t.Fatalf("only %d held connections, want a few hundred", len(conns))
	}
}

func TestStealthScanVariants(t *testing.T) {
	cases := []struct {
		variant   StealthVariant
		wantFlags packet.TCPFlags
	}{
		{StealthFIN, packet.FlagFIN},
		{StealthXmas, packet.FlagFIN | packet.FlagPSH | packet.FlagURG},
		{StealthNull, 0},
		{StealthIdle, packet.FlagSYN},
	}
	for _, tc := range cases {
		t.Run(string(tc.variant), func(t *testing.T) {
			a := NewStealthScan(rand.New(rand.NewSource(32)), AttackConfig{Seed: 32, Victim: 0x0A002A01}, tc.variant)
			dsts := map[uint32]bool{}
			ports := map[uint16]bool{}
			srcs := map[uint32]bool{}
			prevIPID := uint16(0)
			for i := 0; i < 1000; i++ {
				h := a.Next()
				if h.Flags != tc.wantFlags {
					t.Fatalf("packet %d flags %v, want %v", i, h.Flags, tc.wantFlags)
				}
				if h.DstIP&^0xFF != 0x0A002A00 {
					t.Fatalf("packet %d dst %08x outside the victim /24", i, h.DstIP)
				}
				dsts[h.DstIP] = true
				ports[h.DstPort] = true
				srcs[h.SrcIP] = true
				if tc.variant == StealthIdle {
					if h.IPID != prevIPID+1 {
						t.Fatalf("idle zombie IPID jumped: %d after %d", h.IPID, prevIPID)
					}
					prevIPID = h.IPID
				}
			}
			if len(dsts) < 100 {
				t.Fatalf("swept only %d hosts of the /24", len(dsts))
			}
			if len(ports) < 80 {
				t.Fatalf("probed only %d ports, want the well-known list", len(ports))
			}
			if tc.variant == StealthIdle && len(srcs) != 1 {
				t.Fatalf("idle scan must spoof one zombie, saw %d sources", len(srcs))
			}
			if tc.variant != StealthIdle && len(srcs) < 2 {
				t.Fatal("non-idle scan must rotate sources")
			}
		})
	}
}

func TestExfiltrationShape(t *testing.T) {
	a, err := NewAttack(rules.AttackExfiltration, AttackConfig{Seed: 33, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	first := a.Next()
	if first.Flags != packet.FlagSYN {
		t.Fatal("channel must open with a handshake SYN")
	}
	srcPorts := map[uint16]bool{first.SrcPort: true}
	for i := 0; i < 500; i++ {
		h := a.Next()
		// Direction is the point: the compromised home host pushes data
		// *out* to the fixed collection endpoint.
		if h.SrcIP != 0x0A000001 {
			t.Fatalf("packet %d not from the compromised victim", i)
		}
		if h.DstIP != exfilCollectorIP || h.DstPort != exfilCollectorPort {
			t.Fatalf("packet %d not to the collection point", i)
		}
		if h.Flags != packet.FlagACK|packet.FlagPSH || h.TotalLength != 1500 {
			t.Fatalf("packet %d is not a full bulk segment", i)
		}
		srcPorts[h.SrcPort] = true
	}
	if len(srcPorts) != 1 {
		t.Fatalf("bulk transfer must ride one flow, saw %d source ports", len(srcPorts))
	}
}

func TestCampaignStageBoundaries(t *testing.T) {
	c, err := NewCampaign(AttackConfig{Seed: 34, Victim: 0x0A000001}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 350; i++ {
		h := c.Next()
		want := rules.AttackPortScan
		switch {
		case i >= 200:
			want = rules.AttackExfiltration
		case i >= 100:
			want = rules.AttackSSHBruteForce
		}
		// ID after Next names the stage of the packet just emitted —
		// the contract the Mixer's labelling relies on.
		if got := c.ID(); got != want {
			t.Fatalf("packet %d labelled %s, want %s", i, got, want)
		}
		switch want {
		case rules.AttackSSHBruteForce:
			if h.DstPort != 22 {
				t.Fatalf("packet %d of the infection stage targets port %d", i, h.DstPort)
			}
		case rules.AttackExfiltration:
			if h.DstPort != exfilCollectorPort {
				t.Fatalf("packet %d of the exfiltration stage targets port %d", i, h.DstPort)
			}
		}
	}
	if c.Stage() != 2 {
		t.Fatalf("campaign ended in stage %d, want the final stage", c.Stage())
	}
}

func TestFlashCrowdShape(t *testing.T) {
	f := NewFlashCrowd(AttackConfig{Seed: 35, Victim: 0x0A000001, VictimPort: 443})
	bareSYN, data := 0, 0
	const n = 5000
	for i := 0; i < n; i++ {
		h := f.Next()
		if h.SrcIP != 0x0A000001 && h.DstIP != 0x0A000001 {
			t.Fatalf("packet %d does not involve the surged server", i)
		}
		if h.Window == 0 {
			t.Fatalf("packet %d advertises a zero window; a crowd is healthy", i)
		}
		if h.Flags == packet.FlagSYN {
			bareSYN++
		}
		if h.TotalLength > 40 {
			data++
		}
	}
	// What separates a crowd from a flood: handshakes are the natural
	// minority and established-flow data dominates.
	if frac := float64(bareSYN) / n; frac > 0.2 {
		t.Fatalf("bare-SYN share %.3f looks like a flood, not a crowd", frac)
	}
	if frac := float64(data) / n; frac < 0.5 {
		t.Fatalf("data share %.3f too low for an established crowd", frac)
	}
}

// TestMixerCampaignStageLabels covers the mixer × multi-stage gap: the
// campaign interleaved with background across epoch-sized chunks must
// keep the attack-fraction cap, and every attack label must match both
// the stage order and the packet's own shape at stage transitions.
func TestMixerCampaignStageLabels(t *testing.T) {
	bg := NewBackground(DefaultBackgroundConfig(36))
	camp, err := NewCampaign(AttackConfig{Seed: 36, Victim: 0x0A000001}, 150)
	if err != nil {
		t.Fatal(err)
	}
	m := NewMixer(bg, camp, MixConfig{Seed: 36})
	stageOf := map[string]int{}
	for i, id := range CampaignStages {
		stageOf[string(id)] = i
	}
	lastStage, total, attack := 0, 0, 0
	counts := map[string]int{}
	// Chunk the stream so stage transitions land mid-chunk and across
	// chunk (epoch) boundaries, as they do in a scoreboard run.
	for e := 0; e < 4; e++ {
		for i := 0; i < 1500; i++ {
			p := m.Next()
			total++
			if p.Label != LabelAttack {
				continue
			}
			attack++
			st, ok := stageOf[p.Attack]
			if !ok {
				t.Fatalf("unknown attack label %q", p.Attack)
			}
			if st < lastStage {
				t.Fatalf("attack packet %d regressed to stage %s", attack, p.Attack)
			}
			lastStage = st
			counts[p.Attack]++
			switch rules.AttackID(p.Attack) {
			case rules.AttackPortScan:
				if !p.Header.Flags.Has(packet.FlagSYN) {
					t.Fatal("scan-stage packet without SYN")
				}
			case rules.AttackSSHBruteForce:
				if p.Header.DstPort != 22 {
					t.Fatalf("infection-stage packet targets port %d", p.Header.DstPort)
				}
			case rules.AttackExfiltration:
				if p.Header.DstPort != exfilCollectorPort {
					t.Fatalf("exfiltration-stage packet targets port %d", p.Header.DstPort)
				}
			}
		}
	}
	if frac := float64(attack) / float64(total); frac > 0.101 {
		t.Fatalf("attack fraction %.3f exceeds the 10%% cap", frac)
	}
	// The bounded stages emit exactly stageLen packets each — labels at
	// the transitions stay attached to the right stage.
	if counts[string(rules.AttackPortScan)] != 150 || counts[string(rules.AttackSSHBruteForce)] != 150 {
		t.Fatalf("bounded stages emitted %v, want exactly 150 each", counts)
	}
	if counts[string(rules.AttackExfiltration)] == 0 {
		t.Fatal("campaign never reached the exfiltration stage")
	}
}
