// Package trafficgen synthesizes the evaluation workloads of §8: ISP
// backbone background traffic standing in for the MAWI traces, and the
// six attack generators (SYN flood, distributed SYN flood, distributed
// port scan, SSH brute force, Sockstress, and the Mirai telnet scan).
//
// The MAWI archive traces the paper replays are unlabeled captures from a
// trans-Pacific backbone link; the authors treat them as benign and
// inject labeled attack traffic on top (§8). This package reproduces
// that methodology end to end with a synthetic generator that matches
// the statistical properties Jaal's summarization depends on: a
// heavy-tailed flow-size distribution, Zipf-like popularity of
// destination services and hosts, realistic TCP flag mixes and the
// resulting low latent rank of header-field batches (Fig. 10).
package trafficgen

import (
	"math"
	"math/rand"

	"repro/internal/packet"
)

// Label marks a generated packet as background or as part of a labeled
// attack, providing the ground truth MAWI lacks.
type Label uint8

// Packet labels.
const (
	LabelBenign Label = iota
	LabelAttack
)

// LabeledPacket couples a header with its ground-truth label and the
// attack that produced it (empty for benign traffic).
type LabeledPacket struct {
	Header packet.Header
	Label  Label
	Attack string
}

// BackgroundConfig tunes the benign traffic generator.
type BackgroundConfig struct {
	// Seed selects the trace: the experiments use Seed 1 as "Trace 1"
	// and Seed 2 as "Trace 2", mirroring the two MAWI months.
	Seed int64
	// Hosts is the number of distinct client addresses in play.
	Hosts int
	// Servers is the number of distinct popular servers.
	Servers int
	// MeanFlowPackets is the mean of the (heavy-tailed) flow length
	// distribution.
	MeanFlowPackets float64
	// UDPFraction is the share of benign packets that are UDP (DNS,
	// QUIC, NTP). It defaults to 0: the paper's evaluation is TCP-only
	// (its five attacks are all TCP, §8), and a UDP share raises the
	// batch matrices' effective rank past the r = 12 operating point
	// every experiment is calibrated on. Set it explicitly for
	// mixed-protocol workloads (the UDP-flood detection tests do).
	UDPFraction float64
	// HomeFraction is the share of servers inside the monitored
	// network (10.0.0.0/8). An ISP's interesting traffic terminates at
	// its customers, so most benign destinations are in HOME_NET —
	// which is exactly what makes flood signatures a threshold
	// tradeoff rather than trivially separable.
	HomeFraction float64
}

// DefaultBackgroundConfig mirrors a busy backbone mix.
func DefaultBackgroundConfig(seed int64) BackgroundConfig {
	return BackgroundConfig{Seed: seed, Hosts: 4000, Servers: 300, MeanFlowPackets: 12, HomeFraction: 0.6}
}

// wellKnownServices weights destination ports the way backbone mixes
// skew: web dominates, then TLS, DNS-over-TCP, mail, ssh, misc.
var wellKnownServices = []struct {
	port   uint16
	weight float64
}{
	{443, 0.45}, {80, 0.25}, {8080, 0.05}, {53, 0.04}, {25, 0.04},
	{22, 0.03}, {993, 0.03}, {3306, 0.02}, {6881, 0.02}, {123, 0.02},
	{5222, 0.02}, {1935, 0.03},
}

// Background generates benign backbone traffic as a stream of flows.
//
// Besides steady flows it emits the benign-but-attack-like events real
// backbone captures contain — flash crowds of connection attempts to one
// server, stray low-rate port walkers (management probes, P2P
// discovery), bursts of SSH login retries, and zero-window stalls from
// congested receivers. These are what make the detection thresholds a
// genuine tradeoff (and FPR non-zero), exactly as in the unlabeled MAWI
// traces: "the MAWI traces might contain some malicious packets" (§8).
type Background struct {
	cfg     BackgroundConfig
	rng     *rand.Rand
	hosts   []uint32
	servers []uint32
	// zipfHost/zipfServer skew popularity.
	zipfHost   *rand.Zipf
	zipfServer *rand.Zipf

	// live flows being interleaved.
	flows []*bgFlow

	// confuser episode state: packets remaining in the current episode
	// of each kind, and the episode's fixed endpoints.
	flashLeft   int
	flashDst    uint32
	scanLeft    int
	scanSrc     uint32
	scanDst     uint32
	scanPort    uint16
	sshLeft     int
	sshSrc      uint32
	sshDst      uint32
	zeroWinLeft int
	zeroWinFlow packet.FlowKey
}

type bgFlow struct {
	key       packet.FlowKey
	remaining int
	seq, ack  uint32
	started   bool
	finishing bool
}

// NewBackground builds the generator for a config.
func NewBackground(cfg BackgroundConfig) *Background {
	if cfg.Hosts <= 0 {
		cfg.Hosts = 4000
	}
	if cfg.Servers <= 0 {
		cfg.Servers = 300
	}
	if cfg.MeanFlowPackets <= 0 {
		cfg.MeanFlowPackets = 12
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	b := &Background{cfg: cfg, rng: rng}
	// Client space spreads over many /8s; servers concentrate in a few
	// provider blocks, as in backbone captures.
	b.hosts = make([]uint32, cfg.Hosts)
	for i := range b.hosts {
		b.hosts[i] = rng.Uint32()
	}
	b.servers = make([]uint32, cfg.Servers)
	providerBlocks := []uint32{0x17000000, 0x68000000, 0x8D000000, 0xC7000000}
	for i := range b.servers {
		if rng.Float64() < cfg.HomeFraction {
			// Customer-hosted server inside the monitored 10/8.
			b.servers[i] = 0x0A000000 | uint32(rng.Intn(1<<24))
		} else {
			block := providerBlocks[rng.Intn(len(providerBlocks))]
			b.servers[i] = block | uint32(rng.Intn(1<<20))
		}
	}
	b.zipfHost = rand.NewZipf(rng, 1.2, 1, uint64(cfg.Hosts-1))
	b.zipfServer = rand.NewZipf(rng, 1.3, 1, uint64(cfg.Servers-1))
	return b
}

// pickService samples a destination port by service weight.
func (b *Background) pickService() uint16 {
	x := b.rng.Float64()
	acc := 0.0
	for _, s := range wellKnownServices {
		acc += s.weight
		if x < acc {
			return s.port
		}
	}
	// Tail: ephemeral-ish service ports.
	return uint16(1024 + b.rng.Intn(64512))
}

// flowLength samples a heavy-tailed (log-normal-ish) flow length ≥ 1.
func (b *Background) flowLength() int {
	mu := math.Log(b.cfg.MeanFlowPackets) - 0.5
	n := int(math.Exp(b.rng.NormFloat64()*1.0 + mu))
	if n < 1 {
		n = 1
	}
	if n > 2000 {
		n = 2000
	}
	return n
}

// newFlow opens a fresh background flow.
func (b *Background) newFlow() *bgFlow {
	src := b.hosts[b.zipfHost.Uint64()]
	dst := b.servers[b.zipfServer.Uint64()]
	return &bgFlow{
		key: packet.FlowKey{
			SrcIP:   src,
			DstIP:   dst,
			SrcPort: uint16(1024 + b.rng.Intn(64512)),
			DstPort: b.pickService(),
		},
		remaining: b.flowLength(),
		seq:       b.rng.Uint32(),
		ack:       b.rng.Uint32(),
	}
}

// targetLiveFlows is how many flows the generator interleaves at once.
const targetLiveFlows = 64

// Next produces the next benign packet. The stream interleaves dozens of
// live flows with TCP-realistic phases: SYN, established data (ACK/PSH),
// a FIN at the end — plus the attack-like benign episodes described on
// Background.
func (b *Background) Next() packet.Header {
	if h, ok := b.nextConfuser(); ok {
		return h
	}
	if b.cfg.UDPFraction > 0 && b.rng.Float64() < b.cfg.UDPFraction {
		return b.nextUDP()
	}
	for len(b.flows) < targetLiveFlows {
		b.flows = append(b.flows, b.newFlow())
	}
	i := b.rng.Intn(len(b.flows))
	f := b.flows[i]

	h := packet.Header{
		SrcIP:       f.key.SrcIP,
		DstIP:       f.key.DstIP,
		Protocol:    packet.ProtoTCP,
		TTL:         uint8(48 + b.rng.Intn(80)),
		IPID:        uint16(b.rng.Intn(65536)),
		SrcPort:     f.key.SrcPort,
		DstPort:     f.key.DstPort,
		Seq:         f.seq,
		Ack:         f.ack,
		DataOffset:  5,
		Window:      uint16(8192 + b.rng.Intn(57000)),
		TotalLength: uint16(40 + b.rng.Intn(1420)),
	}
	switch {
	case !f.started:
		h.Flags = packet.FlagSYN
		h.TotalLength = 40
		h.Ack = 0
		f.started = true
	case f.remaining <= 1:
		h.Flags = packet.FlagFIN | packet.FlagACK
		f.finishing = true
	default:
		h.Flags = packet.FlagACK
		if b.rng.Float64() < 0.3 {
			h.Flags |= packet.FlagPSH
		}
	}
	f.seq += uint32(h.TotalLength - 40)
	f.remaining--
	if f.remaining <= 0 {
		b.flows[i] = b.newFlow()
	}
	// Reverse direction sometimes, so both directions appear.
	if f.started && !f.finishing && b.rng.Float64() < 0.35 {
		h.SrcIP, h.DstIP = h.DstIP, h.SrcIP
		h.SrcPort, h.DstPort = h.DstPort, h.SrcPort
		h.Flags = packet.FlagACK
	}
	return h
}

// udpServices are the benign UDP destinations: DNS, QUIC, NTP.
var udpServices = []uint16{53, 443, 123, 53, 443}

// nextUDP emits one benign UDP datagram (request or response).
func (b *Background) nextUDP() packet.Header {
	h := packet.Header{
		SrcIP:       b.hosts[b.zipfHost.Uint64()],
		DstIP:       b.servers[b.zipfServer.Uint64()],
		Protocol:    packet.ProtoUDP,
		TTL:         uint8(48 + b.rng.Intn(80)),
		IPID:        uint16(b.rng.Intn(65536)),
		SrcPort:     uint16(1024 + b.rng.Intn(64512)),
		DstPort:     udpServices[b.rng.Intn(len(udpServices))],
		TotalLength: uint16(60 + b.rng.Intn(1200)),
	}
	if b.rng.Float64() < 0.5 { // response direction
		h.SrcIP, h.DstIP = h.DstIP, h.SrcIP
		h.SrcPort, h.DstPort = h.DstPort, h.SrcPort
	}
	return h
}

// nextConfuser maybe starts or continues a benign attack-like episode,
// returning its next packet. Roughly 6 % of the stream is episodic.
func (b *Background) nextConfuser() (packet.Header, bool) {
	// Start new episodes with small probabilities when idle.
	if b.flashLeft == 0 && b.rng.Float64() < 0.0010 {
		// Flash crowds strike anywhere (a news link, a game patch),
		// not preferentially at the already-popular servers; keeping
		// them modest and uniformly placed bounds how much benign SYN
		// mass any one destination region accumulates.
		b.flashLeft = 20 + b.rng.Intn(40)
		b.flashDst = b.servers[b.rng.Intn(len(b.servers))]
	}
	if b.scanLeft == 0 && b.rng.Float64() < 0.0007 {
		b.scanLeft = 10 + b.rng.Intn(30)
		b.scanSrc = b.hosts[b.rng.Intn(len(b.hosts))]
		b.scanDst = b.servers[b.rng.Intn(len(b.servers))]
		b.scanPort = uint16(1 + b.rng.Intn(1024))
	}
	if b.sshLeft == 0 && b.rng.Float64() < 0.0007 {
		b.sshLeft = 2 + b.rng.Intn(4) // below the brute-force count of 5
		b.sshSrc = b.hosts[b.rng.Intn(len(b.hosts))]
		b.sshDst = b.servers[b.rng.Intn(len(b.servers))]
	}
	if b.zeroWinLeft == 0 && b.rng.Float64() < 0.0015 {
		// A stalled receiver advertises zero-window a handful of times
		// before recovering or timing out.
		b.zeroWinLeft = 3 + b.rng.Intn(4)
		b.zeroWinFlow = packet.FlowKey{
			SrcIP:   b.hosts[b.rng.Intn(len(b.hosts))],
			DstIP:   b.servers[b.rng.Intn(len(b.servers))],
			SrcPort: uint16(1024 + b.rng.Intn(64512)),
			DstPort: b.pickService(),
		}
	}

	base := packet.Header{
		Protocol:    packet.ProtoTCP,
		TTL:         uint8(48 + b.rng.Intn(80)),
		IPID:        uint16(b.rng.Intn(65536)),
		Seq:         b.rng.Uint32(),
		DataOffset:  5,
		TotalLength: 40,
	}
	switch {
	case b.flashLeft > 0 && b.rng.Float64() < 0.35:
		// Flash crowd: many clients hitting one server. Real crowds
		// are mostly *successful* connections, so the packet mix is a
		// SYN followed by request/response data — the pure-SYN mass at
		// the server stays bounded, unlike a flood.
		b.flashLeft--
		base.SrcIP = b.hosts[b.rng.Intn(len(b.hosts))]
		base.DstIP = b.flashDst
		base.SrcPort = uint16(1024 + b.rng.Intn(64512))
		base.DstPort = 443
		base.Window = uint16(8192 + b.rng.Intn(57000))
		if b.rng.Float64() < 0.3 {
			base.Flags = packet.FlagSYN
		} else {
			base.Flags = packet.FlagACK
			if b.rng.Float64() < 0.5 {
				base.Flags |= packet.FlagPSH
			}
			base.Ack = b.rng.Uint32()
			base.TotalLength = uint16(60 + b.rng.Intn(600))
		}
		return base, true
	case b.scanLeft > 0 && b.rng.Float64() < 0.25:
		// Stray port walker: one source touching sequential ports.
		b.scanLeft--
		b.scanPort++
		base.SrcIP = b.scanSrc
		base.DstIP = b.scanDst
		base.SrcPort = uint16(1024 + b.rng.Intn(64512))
		base.DstPort = b.scanPort
		base.Flags = packet.FlagSYN
		base.Window = 1024
		return base, true
	case b.sshLeft > 0 && b.rng.Float64() < 0.25:
		// Legitimate SSH retry burst.
		b.sshLeft--
		base.SrcIP = b.sshSrc
		base.DstIP = b.sshDst
		base.SrcPort = uint16(1024 + b.rng.Intn(64512))
		base.DstPort = 22
		base.Flags = packet.FlagSYN
		base.Window = uint16(4096 + b.rng.Intn(16384))
		return base, true
	case b.zeroWinLeft > 0 && b.rng.Float64() < 0.30:
		// Congested receiver advertising a zero window.
		b.zeroWinLeft--
		base.SrcIP = b.zeroWinFlow.SrcIP
		base.DstIP = b.zeroWinFlow.DstIP
		base.SrcPort = b.zeroWinFlow.SrcPort
		base.DstPort = b.zeroWinFlow.DstPort
		base.Flags = packet.FlagACK
		base.Ack = b.rng.Uint32()
		base.Window = 0
		return base, true
	}
	return packet.Header{}, false
}

// Batch produces n benign packets.
func (b *Background) Batch(n int) []packet.Header {
	out := make([]packet.Header, n)
	for i := range out {
		out[i] = b.Next()
	}
	return out
}

// LabeledBatch produces n benign labeled packets.
func (b *Background) LabeledBatch(n int) []LabeledPacket {
	out := make([]LabeledPacket, n)
	for i := range out {
		out[i] = LabeledPacket{Header: b.Next(), Label: LabelBenign}
	}
	return out
}
