package linalg

import (
	"fmt"
	"math"
	"math/rand"
)

// KMeansResult holds the output of a k-means clustering run.
type KMeansResult struct {
	// Centroids is a k×p matrix whose rows are the cluster centroids —
	// the representative packets R of §4.3.
	Centroids *Matrix
	// Assignments maps each input row to the index of its centroid —
	// the assignment matrix B of Eq. (4) in index form.
	Assignments []int
	// Counts holds the membership count of each cluster — the metadata
	// vector c appended to the summary.
	Counts []int
	// Inertia is the k-means objective: the sum of squared distances
	// from each row to its assigned centroid (the squared Frobenius
	// residual of Eq. 4).
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeansConfig controls KMeans.
type KMeansConfig struct {
	// MaxIterations bounds the Lloyd refinement loop. Zero or negative
	// selects the default of 50.
	MaxIterations int
	// Tolerance stops iteration once the relative improvement of the
	// objective drops below it. Zero or negative selects 1e-6.
	Tolerance float64
}

func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
	return c
}

// KMeans clusters the rows of x into k clusters using k-means++ seeding
// (Arthur & Vassilvitskii 2007) followed by Lloyd iterations. The seeding
// gives an O(log k)-competitive solution in expectation and, in practice,
// fast convergence — the properties §4.3 relies on.
//
// rng provides all randomness so callers can make runs reproducible.
// If k ≥ rows, every row becomes its own centroid.
func KMeans(x *Matrix, k int, rng *rand.Rand, cfg KMeansConfig) (*KMeansResult, error) {
	if x.Rows() == 0 || x.Cols() == 0 {
		return nil, ErrEmptyMatrix
	}
	if k < 1 {
		return nil, fmt.Errorf("linalg: k must be ≥ 1, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("linalg: nil rng")
	}
	cfg = cfg.withDefaults()

	n, p := x.Rows(), x.Cols()
	if k >= n {
		// Degenerate case: each row is its own representative.
		res := &KMeansResult{
			Centroids:   x.Clone(),
			Assignments: make([]int, n),
			Counts:      make([]int, n),
		}
		for i := 0; i < n; i++ {
			res.Assignments[i] = i
			res.Counts[i] = 1
		}
		return res, nil
	}

	centroids := seedPlusPlus(x, k, rng)
	assign := make([]int, n)
	counts := make([]int, k)
	prevObj := math.Inf(1)
	var obj float64
	iters := 0

	for ; iters < cfg.MaxIterations; iters++ {
		// Assignment step.
		obj = 0
		for i := range counts {
			counts[i] = 0
		}
		for i := 0; i < n; i++ {
			row := x.Row(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := SquaredDistance(row, centroids.Row(c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			counts[best]++
			obj += bestD
		}

		// Update step.
		next := NewMatrix(k, p)
		for i := 0; i < n; i++ {
			c := assign[i]
			nr := next.Row(c)
			for j, v := range x.Row(i) {
				nr[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with the point farthest from
				// its centroid, a standard Lloyd repair step.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					d := SquaredDistance(x.Row(i), centroids.Row(assign[i]))
					if d > farD {
						far, farD = i, d
					}
				}
				copy(next.Row(c), x.Row(far))
				continue
			}
			inv := 1 / float64(counts[c])
			nr := next.Row(c)
			for j := range nr {
				nr[j] *= inv
			}
		}
		centroids = next

		if prevObj-obj <= cfg.Tolerance*math.Max(prevObj, 1) {
			iters++
			break
		}
		prevObj = obj
	}

	// Final assignment against the last centroid update.
	obj = 0
	for i := range counts {
		counts[i] = 0
	}
	for i := 0; i < n; i++ {
		row := x.Row(i)
		best, bestD := 0, math.Inf(1)
		for c := 0; c < k; c++ {
			d := SquaredDistance(row, centroids.Row(c))
			if d < bestD {
				best, bestD = c, d
			}
		}
		assign[i] = best
		counts[best]++
		obj += bestD
	}

	return &KMeansResult{
		Centroids:   centroids,
		Assignments: assign,
		Counts:      counts,
		Inertia:     obj,
		Iterations:  iters,
	}, nil
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting:
// the first uniformly at random, each subsequent one with probability
// proportional to its squared distance to the nearest centroid so far.
func seedPlusPlus(x *Matrix, k int, rng *rand.Rand) *Matrix {
	n, p := x.Rows(), x.Cols()
	centroids := NewMatrix(k, p)
	first := rng.Intn(n)
	copy(centroids.Row(0), x.Row(first))

	d2 := make([]float64, n)
	for i := 0; i < n; i++ {
		d2[i] = SquaredDistance(x.Row(i), centroids.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			// All points coincide with existing centroids; fall back to
			// uniform choice.
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(centroids.Row(c), x.Row(pick))
		for i := 0; i < n; i++ {
			if d := SquaredDistance(x.Row(i), centroids.Row(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
	return centroids
}
