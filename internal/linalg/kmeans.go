package linalg

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/par"
)

// KMeansResult holds the output of a k-means clustering run.
type KMeansResult struct {
	// Centroids is a k×p matrix whose rows are the cluster centroids —
	// the representative packets R of §4.3.
	Centroids *Matrix
	// Assignments maps each input row to the index of its centroid —
	// the assignment matrix B of Eq. (4) in index form.
	Assignments []int
	// Counts holds the membership count of each cluster — the metadata
	// vector c appended to the summary.
	Counts []int
	// Inertia is the k-means objective: the sum of squared distances
	// from each row to its assigned centroid (the squared Frobenius
	// residual of Eq. 4).
	Inertia float64
	// Iterations is the number of Lloyd iterations performed.
	Iterations int
}

// KMeansConfig controls KMeans.
type KMeansConfig struct {
	// MaxIterations bounds the Lloyd refinement loop. Zero or negative
	// selects the default of 50.
	MaxIterations int
	// Tolerance stops iteration once the relative improvement of the
	// objective drops below it. Zero or negative selects 1e-6.
	Tolerance float64
	// Workers bounds the parallelism of the Lloyd assignment step; zero
	// or negative selects GOMAXPROCS. Rows are assigned independently
	// and the objective is reduced in row order, so every worker count
	// produces bit-identical results.
	Workers int
}

func (c KMeansConfig) withDefaults() KMeansConfig {
	if c.MaxIterations <= 0 {
		c.MaxIterations = 50
	}
	if c.Tolerance <= 0 {
		c.Tolerance = 1e-6
	}
	return c
}

// KMeans clusters the rows of x into k clusters using k-means++ seeding
// (Arthur & Vassilvitskii 2007) followed by Lloyd iterations. The seeding
// gives an O(log k)-competitive solution in expectation and, in practice,
// fast convergence — the properties §4.3 relies on.
//
// rng provides all randomness so callers can make runs reproducible.
// If k ≥ rows, every row becomes its own centroid.
func KMeans(x *Matrix, k int, rng *rand.Rand, cfg KMeansConfig) (*KMeansResult, error) {
	if x.Rows() == 0 || x.Cols() == 0 {
		return nil, ErrEmptyMatrix
	}
	if k < 1 {
		return nil, fmt.Errorf("linalg: k must be ≥ 1, got %d", k)
	}
	if rng == nil {
		return nil, fmt.Errorf("linalg: nil rng")
	}
	n, p := x.Rows(), x.Cols()
	if k > n {
		k = n
	}
	res := &KMeansResult{
		Centroids:   NewMatrix(k, p),
		Assignments: make([]int, n),
		Counts:      make([]int, k),
	}
	sc := GetScratch()
	inertia, iters, err := KMeansInto(x, k, rng, cfg, sc, res.Centroids, res.Assignments, res.Counts)
	PutScratch(sc)
	if err != nil {
		return nil, err
	}
	res.Inertia = inertia
	res.Iterations = iters
	return res, nil
}

// KMeansInto is the allocation-free core of KMeans: it clusters the rows
// of x into k ≤ x.Rows() clusters, writing the centroids into out (k×p),
// the per-row assignments into assign (length n) and the cluster sizes
// into counts (length k). Every intermediate — the k-means++ distance
// vector, the ping-pong centroid buffers and the per-row best distances
// — comes from sc, which is carved (never Reset) so the caller may share
// one Scratch across the whole summarization of a batch. It returns the
// final objective value and the Lloyd iteration count.
//
// The assignment step fans row chunks out over the shared worker pool
// (cfg.Workers goroutines); counts and the objective are then reduced
// sequentially in row order, so results are bit-identical for every
// worker count. Seeding stays sequential on rng.
func KMeansInto(x *Matrix, k int, rng *rand.Rand, cfg KMeansConfig, sc *Scratch, out *Matrix, assign []int, counts []int) (inertia float64, iters int, err error) {
	if x.Rows() == 0 || x.Cols() == 0 {
		return 0, 0, ErrEmptyMatrix
	}
	if k < 1 {
		return 0, 0, fmt.Errorf("linalg: k must be ≥ 1, got %d", k)
	}
	if rng == nil {
		return 0, 0, fmt.Errorf("linalg: nil rng")
	}
	n, p := x.Rows(), x.Cols()
	if k > n {
		return 0, 0, fmt.Errorf("linalg: k = %d exceeds %d rows", k, n)
	}
	if out.rows != k || out.cols != p || len(assign) != n || len(counts) != k {
		return 0, 0, fmt.Errorf("linalg: k-means outputs %dx%d/%d/%d do not fit %dx%d k=%d",
			out.rows, out.cols, len(assign), len(counts), n, p, k)
	}
	cfg = cfg.withDefaults()

	if k == n {
		// Degenerate case: each row is its own representative.
		copy(out.data, x.data)
		for i := 0; i < n; i++ {
			assign[i] = i
			counts[i] = 1
		}
		return 0, 0, nil
	}

	cur := sc.Matrix(k, p)
	seedPlusPlus(x, cur, rng, sc)
	next := sc.Matrix(k, p)
	dist := sc.Floats(n)
	prevObj := math.Inf(1)
	var obj float64

	for ; iters < cfg.MaxIterations; iters++ {
		// Assignment step.
		obj = assignRows(x, cur, assign, dist, counts, cfg.Workers)

		// Update step.
		for i := range next.data {
			next.data[i] = 0
		}
		for i := 0; i < n; i++ {
			c := assign[i]
			nr := next.Row(c)
			for j, v := range x.Row(i) {
				nr[j] += v
			}
		}
		for c := 0; c < k; c++ {
			if counts[c] == 0 {
				// Re-seed an empty cluster with the point farthest from
				// its centroid, a standard Lloyd repair step.
				far, farD := 0, -1.0
				for i := 0; i < n; i++ {
					d := SquaredDistance(x.Row(i), cur.Row(assign[i]))
					if d > farD {
						far, farD = i, d
					}
				}
				copy(next.Row(c), x.Row(far))
				continue
			}
			inv := 1 / float64(counts[c])
			nr := next.Row(c)
			for j := range nr {
				nr[j] *= inv
			}
		}
		cur, next = next, cur

		if prevObj-obj <= cfg.Tolerance*math.Max(prevObj, 1) {
			iters++
			break
		}
		prevObj = obj
	}

	// Final assignment against the last centroid update.
	obj = assignRows(x, cur, assign, dist, counts, cfg.Workers)
	copy(out.data, cur.data)
	return obj, iters, nil
}

// assignRows runs one Lloyd assignment step: each row of x gets its
// nearest centroid. The per-row searches are independent and fan out
// over the worker pool in fixed chunks; the reduction of counts and the
// objective then runs sequentially in row order, so the returned
// objective is bit-identical no matter how the chunks were scheduled.
func assignRows(x, cents *Matrix, assign []int, dist []float64, counts []int, workers int) float64 {
	n := x.Rows()
	k := cents.Rows()
	par.Rows(n, workers, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := x.Row(i)
			best, bestD := 0, math.Inf(1)
			for c := 0; c < k; c++ {
				d := SquaredDistance(row, cents.Row(c))
				if d < bestD {
					best, bestD = c, d
				}
			}
			assign[i] = best
			dist[i] = bestD
		}
	})
	for c := range counts {
		counts[c] = 0
	}
	var obj float64
	for i := 0; i < n; i++ {
		counts[assign[i]]++
		obj += dist[i]
	}
	return obj
}

// seedPlusPlus picks k initial centroids with the k-means++ D² weighting:
// the first uniformly at random, each subsequent one with probability
// proportional to its squared distance to the nearest centroid so far.
// The centroids are written into cur (k×p); d² scratch comes from sc.
// Seeding is strictly sequential: every draw consumes rng in a fixed
// order, which is what keeps same-seed runs reproducible (§4.3).
func seedPlusPlus(x *Matrix, cur *Matrix, rng *rand.Rand, sc *Scratch) {
	n := x.Rows()
	k := cur.Rows()
	first := rng.Intn(n)
	copy(cur.Row(0), x.Row(first))

	d2 := sc.Floats(n)
	for i := 0; i < n; i++ {
		d2[i] = SquaredDistance(x.Row(i), cur.Row(0))
	}
	for c := 1; c < k; c++ {
		var total float64
		for _, d := range d2 {
			total += d
		}
		var pick int
		if total <= 0 {
			// All points coincide with existing centroids; fall back to
			// uniform choice.
			pick = rng.Intn(n)
		} else {
			target := rng.Float64() * total
			acc := 0.0
			pick = n - 1
			for i, d := range d2 {
				acc += d
				if acc >= target {
					pick = i
					break
				}
			}
		}
		copy(cur.Row(c), x.Row(pick))
		for i := 0; i < n; i++ {
			if d := SquaredDistance(x.Row(i), cur.Row(c)); d < d2[i] {
				d2[i] = d
			}
		}
	}
}
