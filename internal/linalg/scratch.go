package linalg

import "sync"

// Scratch is a reusable arena for the intermediate buffers of the
// summarization hot path: the Jacobi SVD working copy and rotation
// accumulator, the k-means distance vector and ping-pong centroid
// buffers, and the rank-r reconstruction. Handing these out of an arena
// instead of make() is what takes a batch summarization from ~30 heap
// allocations to the low single digits (BenchmarkSummarizeBatch).
//
// Buffers are carved off growing backing slabs and stay valid until the
// next Reset; Reset reclaims everything at once. A Scratch is not safe
// for concurrent use — each goroutine takes its own from the pool with
// GetScratch and returns it with PutScratch, after which every buffer
// it handed out is dead (the pool will recycle the memory).
type Scratch struct {
	floats []float64
	ints   []int
	mats   []Matrix
	fOff   int
	iOff   int
	mOff   int
}

// Reset reclaims every buffer handed out since the last Reset. The
// backing slabs are kept, so a warmed-up Scratch allocates nothing.
func (s *Scratch) Reset() { s.fOff, s.iOff, s.mOff = 0, 0, 0 }

// Floats returns a zeroed []float64 of length n from the arena.
func (s *Scratch) Floats(n int) []float64 {
	if s.fOff+n > len(s.floats) {
		c := 2 * len(s.floats)
		if c < n {
			c = n
		}
		if c < 1024 {
			c = 1024
		}
		// Abandon the remainder of the old slab: buffers already handed
		// out keep referencing it, so it must not be recycled here.
		s.floats = make([]float64, c)
		s.fOff = 0
	}
	out := s.floats[s.fOff : s.fOff+n : s.fOff+n]
	s.fOff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// Ints returns a zeroed []int of length n from the arena.
func (s *Scratch) Ints(n int) []int {
	if s.iOff+n > len(s.ints) {
		c := 2 * len(s.ints)
		if c < n {
			c = n
		}
		if c < 256 {
			c = 256
		}
		s.ints = make([]int, c)
		s.iOff = 0
	}
	out := s.ints[s.iOff : s.iOff+n : s.iOff+n]
	s.iOff += n
	for i := range out {
		out[i] = 0
	}
	return out
}

// Matrix returns a zeroed rows×cols matrix whose header and data both
// live in the arena.
func (s *Scratch) Matrix(rows, cols int) *Matrix {
	if s.mOff == len(s.mats) {
		c := 2 * len(s.mats)
		if c < 8 {
			c = 8
		}
		s.mats = make([]Matrix, c)
		s.mOff = 0
	}
	m := &s.mats[s.mOff]
	s.mOff++
	m.rows, m.cols = rows, cols
	m.data = s.Floats(rows * cols)
	return m
}

var scratchPool = sync.Pool{New: func() any { return new(Scratch) }}

// GetScratch takes a Scratch from the shared pool. Pair with PutScratch.
func GetScratch() *Scratch { return scratchPool.Get().(*Scratch) }

// PutScratch resets s and returns it to the pool. The caller must not
// touch s or any buffer it handed out afterwards.
func PutScratch(s *Scratch) {
	s.Reset()
	scratchPool.Put(s)
}
