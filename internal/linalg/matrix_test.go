package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestNewMatrixZeros(t *testing.T) {
	m := NewMatrix(3, 4)
	if m.Rows() != 3 || m.Cols() != 4 {
		t.Fatalf("got %dx%d, want 3x4", m.Rows(), m.Cols())
	}
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			if m.At(i, j) != 0 {
				t.Fatalf("element (%d,%d) = %v, want 0", i, j, m.At(i, j))
			}
		}
	}
}

func TestNewMatrixNegativePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimensions")
		}
	}()
	NewMatrix(-1, 2)
}

func TestNewMatrixFromRows(t *testing.T) {
	m, err := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}, {5, 6}})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(2, 1) != 6 {
		t.Fatalf("At(2,1) = %v, want 6", m.At(2, 1))
	}
}

func TestNewMatrixFromRowsRagged(t *testing.T) {
	if _, err := NewMatrixFromRows([][]float64{{1, 2}, {3}}); err == nil {
		t.Fatal("expected error for ragged rows")
	}
}

func TestNewMatrixFromRowsEmpty(t *testing.T) {
	m, err := NewMatrixFromRows(nil)
	if err != nil {
		t.Fatal(err)
	}
	if m.Rows() != 0 {
		t.Fatalf("rows = %d, want 0", m.Rows())
	}
}

func TestNewMatrixFromData(t *testing.T) {
	m, err := NewMatrixFromData(2, 2, []float64{1, 2, 3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if m.At(1, 0) != 3 {
		t.Fatalf("At(1,0) = %v, want 3", m.At(1, 0))
	}
	if _, err := NewMatrixFromData(2, 2, []float64{1}); err == nil {
		t.Fatal("expected length mismatch error")
	}
}

func TestSetAt(t *testing.T) {
	m := NewMatrix(2, 2)
	m.Set(0, 1, 7.5)
	if m.At(0, 1) != 7.5 {
		t.Fatalf("At(0,1) = %v, want 7.5", m.At(0, 1))
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	m := NewMatrix(2, 2)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	m.At(2, 0)
}

func TestRowSharesStorage(t *testing.T) {
	m := NewMatrix(2, 3)
	m.Row(1)[2] = 9
	if m.At(1, 2) != 9 {
		t.Fatal("Row must share storage with the matrix")
	}
}

func TestColCopies(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Col(1)
	if c[0] != 2 || c[1] != 4 {
		t.Fatalf("Col(1) = %v, want [2 4]", c)
	}
	c[0] = 100
	if m.At(0, 1) != 2 {
		t.Fatal("Col must return a copy")
	}
}

func TestCloneIndependent(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	c := m.Clone()
	c.Set(0, 0, 42)
	if m.At(0, 0) != 1 {
		t.Fatal("Clone must not alias original storage")
	}
}

func TestTranspose(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, 2, 3}, {4, 5, 6}})
	tr := m.Transpose()
	if tr.Rows() != 3 || tr.Cols() != 2 {
		t.Fatalf("transpose shape %dx%d, want 3x2", tr.Rows(), tr.Cols())
	}
	for i := 0; i < 2; i++ {
		for j := 0; j < 3; j++ {
			if m.At(i, j) != tr.At(j, i) {
				t.Fatalf("transpose mismatch at (%d,%d)", i, j)
			}
		}
	}
}

func TestMul(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{1, 2}, {3, 4}})
	b, _ := NewMatrixFromRows([][]float64{{5, 6}, {7, 8}})
	got, err := Mul(a, b)
	if err != nil {
		t.Fatal(err)
	}
	want, _ := NewMatrixFromRows([][]float64{{19, 22}, {43, 50}})
	if !Equal(got, want, 1e-12) {
		t.Fatalf("a·b = %v, want %v", got, want)
	}
}

func TestMulDimensionMismatch(t *testing.T) {
	a := NewMatrix(2, 3)
	b := NewMatrix(2, 3)
	if _, err := Mul(a, b); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestSub(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{5, 6}})
	b, _ := NewMatrixFromRows([][]float64{{1, 2}})
	got, err := Sub(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if got.At(0, 0) != 4 || got.At(0, 1) != 4 {
		t.Fatalf("a−b = %v", got)
	}
	if _, err := Sub(a, NewMatrix(2, 2)); err == nil {
		t.Fatal("expected dimension mismatch error")
	}
}

func TestScale(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{1, -2}})
	m.Scale(3)
	if m.At(0, 0) != 3 || m.At(0, 1) != -6 {
		t.Fatalf("scaled = %v", m)
	}
}

func TestFrobeniusNorm(t *testing.T) {
	m, _ := NewMatrixFromRows([][]float64{{3, 4}})
	if got := m.FrobeniusNorm(); math.Abs(got-5) > 1e-12 {
		t.Fatalf("‖m‖_F = %v, want 5", got)
	}
}

func TestEqualShapes(t *testing.T) {
	if Equal(NewMatrix(1, 2), NewMatrix(2, 1), 1) {
		t.Fatal("matrices of different shape must not be Equal")
	}
}

func TestDot(t *testing.T) {
	if got := Dot([]float64{1, 2, 3}, []float64{4, 5, 6}); got != 32 {
		t.Fatalf("dot = %v, want 32", got)
	}
}

func TestSquaredDistance(t *testing.T) {
	if got := SquaredDistance([]float64{0, 0}, []float64{3, 4}); got != 25 {
		t.Fatalf("d² = %v, want 25", got)
	}
}

func TestMeanVariance(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	if got := Mean(xs); got != 5 {
		t.Fatalf("mean = %v, want 5", got)
	}
	if got := Variance(xs); got != 4 {
		t.Fatalf("var = %v, want 4", got)
	}
	if Variance([]float64{1}) != 0 {
		t.Fatal("variance of a single value must be 0")
	}
	if Mean(nil) != 0 {
		t.Fatal("mean of empty slice must be 0")
	}
}

func TestWeightedVariance(t *testing.T) {
	// Weighted variance with integer weights must equal the variance of
	// the expanded sample.
	values := []float64{1, 5, 9}
	weights := []float64{2, 1, 2}
	var expanded []float64
	for i, v := range values {
		for w := 0; w < int(weights[i]); w++ {
			expanded = append(expanded, v)
		}
	}
	got := WeightedVariance(values, weights)
	want := Variance(expanded)
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("weighted variance = %v, want %v", got, want)
	}
}

func TestWeightedVarianceZeroWeight(t *testing.T) {
	if got := WeightedVariance([]float64{1, 100}, []float64{5, 0}); got != 0 {
		t.Fatalf("variance = %v, want 0 (only one distinct value weighted)", got)
	}
}

func TestWeightedVarianceNegativeWeightIgnored(t *testing.T) {
	got := WeightedVariance([]float64{1, 3, 100}, []float64{1, 1, -7})
	want := Variance([]float64{1, 3})
	if math.Abs(got-want) > 1e-12 {
		t.Fatalf("variance = %v, want %v", got, want)
	}
}

// Property: transpose is an involution.
func TestTransposeInvolutionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(10), 1+rng.Intn(10))
		return Equal(m.Transpose().Transpose(), m, 0)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: ‖A‖_F² == ‖Aᵀ‖_F².
func TestFrobeniusTransposeInvariantProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		m := randomMatrix(rng, 1+rng.Intn(12), 1+rng.Intn(12))
		return math.Abs(m.FrobeniusNorm()-m.Transpose().FrobeniusNorm()) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

// Property: (A·B)ᵀ == Bᵀ·Aᵀ.
func TestMulTransposeProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, m, p := 1+rng.Intn(6), 1+rng.Intn(6), 1+rng.Intn(6)
		a := randomMatrix(rng, n, m)
		b := randomMatrix(rng, m, p)
		ab, err := Mul(a, b)
		if err != nil {
			return false
		}
		btat, err := Mul(b.Transpose(), a.Transpose())
		if err != nil {
			return false
		}
		return Equal(ab.Transpose(), btat, 1e-9)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func randomMatrix(rng *rand.Rand, rows, cols int) *Matrix {
	m := NewMatrix(rows, cols)
	for i := range m.Data() {
		m.Data()[i] = rng.NormFloat64()
	}
	return m
}
