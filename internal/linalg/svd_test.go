package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// reconstructionError returns ‖A − U·diag(S)·Vᵀ‖_F.
func reconstructionError(t *testing.T, a *Matrix, d *SVD) float64 {
	t.Helper()
	rec, err := d.Reconstruct(0)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := Sub(a, rec)
	if err != nil {
		t.Fatal(err)
	}
	return diff.FrobeniusNorm()
}

func TestSVDEmptyMatrix(t *testing.T) {
	if _, err := ComputeSVD(NewMatrix(0, 3)); err != ErrEmptyMatrix {
		t.Fatalf("got err %v, want ErrEmptyMatrix", err)
	}
}

func TestSVDIdentity(t *testing.T) {
	d, err := ComputeSVD(identity(4))
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range d.S {
		if math.Abs(s-1) > 1e-12 {
			t.Fatalf("singular value %d = %v, want 1", i, s)
		}
	}
}

func TestSVDKnownDiagonal(t *testing.T) {
	a, _ := NewMatrixFromRows([][]float64{{3, 0}, {0, 4}, {0, 0}})
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(d.S[0]-4) > 1e-10 || math.Abs(d.S[1]-3) > 1e-10 {
		t.Fatalf("singular values %v, want [4 3]", d.S)
	}
}

func TestSVDReconstruction(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	a := randomMatrix(rng, 50, 18)
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if e := reconstructionError(t, a, d); e > 1e-9*a.FrobeniusNorm() {
		t.Fatalf("reconstruction error %v too large", e)
	}
}

func TestSVDWideMatrix(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	a := randomMatrix(rng, 5, 20) // more columns than rows
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	if d.U.Rows() != 5 || d.V.Rows() != 20 {
		t.Fatalf("U is %dx%d, V is %dx%d", d.U.Rows(), d.U.Cols(), d.V.Rows(), d.V.Cols())
	}
	if e := reconstructionError(t, a, d); e > 1e-9*a.FrobeniusNorm() {
		t.Fatalf("reconstruction error %v too large", e)
	}
}

func TestSVDSingularValuesDescending(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	a := randomMatrix(rng, 40, 10)
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(d.S); i++ {
		if d.S[i] > d.S[i-1]+1e-12 {
			t.Fatalf("singular values not descending: %v", d.S)
		}
	}
}

func TestSVDOrthonormalColumns(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	a := randomMatrix(rng, 30, 8)
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	checkOrthonormal := func(name string, m *Matrix) {
		for j := 0; j < m.Cols(); j++ {
			for k := j; k < m.Cols(); k++ {
				dot := Dot(m.Col(j), m.Col(k))
				want := 0.0
				if j == k {
					want = 1.0
				}
				if math.Abs(dot-want) > 1e-9 {
					t.Fatalf("%s columns %d,%d: dot = %v, want %v", name, j, k, dot, want)
				}
			}
		}
	}
	checkOrthonormal("U", d.U)
	checkOrthonormal("V", d.V)
}

func TestSVDRankDeficient(t *testing.T) {
	// Third column is the sum of the first two: rank 2.
	rows := make([][]float64, 20)
	rng := rand.New(rand.NewSource(5))
	for i := range rows {
		a, b := rng.NormFloat64(), rng.NormFloat64()
		rows[i] = []float64{a, b, a + b}
	}
	m, _ := NewMatrixFromRows(rows)
	d, err := ComputeSVD(m)
	if err != nil {
		t.Fatal(err)
	}
	if r := d.Rank(0); r != 2 {
		t.Fatalf("rank = %d, want 2 (S=%v)", r, d.S)
	}
}

func TestSVDRankZeroMatrix(t *testing.T) {
	d, err := ComputeSVD(NewMatrix(5, 3))
	if err != nil {
		t.Fatal(err)
	}
	if r := d.Rank(0); r != 0 {
		t.Fatalf("rank of zero matrix = %d, want 0", r)
	}
}

func TestSVDEnergyRank(t *testing.T) {
	d := &SVD{S: []float64{10, 3, 1, 0.1}}
	// total = 100+9+1+0.01 = 110.01; top-1 = 100/110.01 ≈ 0.909.
	if r := d.EnergyRank(0.90); r != 1 {
		t.Fatalf("energy rank(0.90) = %d, want 1", r)
	}
	if r := d.EnergyRank(0.999); r != 3 {
		t.Fatalf("energy rank(0.999) = %d, want 3", r)
	}
	if r := (&SVD{S: []float64{0, 0}}).EnergyRank(0.9); r != 0 {
		t.Fatalf("energy rank of zero spectrum = %d, want 0", r)
	}
}

func TestSVDTruncate(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	a := randomMatrix(rng, 25, 6)
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	ur, sr, vr, err := d.Truncate(3)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Cols() != 3 || len(sr) != 3 || vr.Cols() != 3 {
		t.Fatalf("truncated shapes U:%d S:%d V:%d, want 3", ur.Cols(), len(sr), vr.Cols())
	}
	if _, _, _, err := d.Truncate(0); err == nil {
		t.Fatal("expected range error for r=0")
	}
	if _, _, _, err := d.Truncate(7); err == nil {
		t.Fatal("expected range error for r>p")
	}
}

// Eckart–Young: the rank-r truncation error equals sqrt(Σ_{i≥r} s_i²).
func TestSVDEckartYoung(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	a := randomMatrix(rng, 40, 9)
	d, err := ComputeSVD(a)
	if err != nil {
		t.Fatal(err)
	}
	const r = 4
	rec, err := d.Reconstruct(r)
	if err != nil {
		t.Fatal(err)
	}
	diff, _ := Sub(a, rec)
	var tail float64
	for _, s := range d.S[r:] {
		tail += s * s
	}
	want := math.Sqrt(tail)
	if math.Abs(diff.FrobeniusNorm()-want) > 1e-8 {
		t.Fatalf("truncation error %v, want %v", diff.FrobeniusNorm(), want)
	}
}

func TestTruncatedSVDConvenience(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	a := randomMatrix(rng, 20, 5)
	ur, sr, vr, err := TruncatedSVD(a, 2)
	if err != nil {
		t.Fatal(err)
	}
	if ur.Cols() != 2 || len(sr) != 2 || vr.Cols() != 2 {
		t.Fatal("TruncatedSVD returned wrong shapes")
	}
}

// Property: SVD reconstructs arbitrary random matrices to machine precision
// and singular values are non-negative and sorted.
func TestSVDReconstructionProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n, p := 2+rng.Intn(30), 1+rng.Intn(18)
		a := randomMatrix(rng, n, p)
		d, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		for i, s := range d.S {
			if s < 0 || (i > 0 && s > d.S[i-1]+1e-12) {
				return false
			}
		}
		rec, err := d.Reconstruct(0)
		if err != nil {
			return false
		}
		diff, err := Sub(a, rec)
		if err != nil {
			return false
		}
		return diff.FrobeniusNorm() <= 1e-8*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

// Property: the Frobenius norm equals the ℓ2 norm of the singular values.
func TestSVDNormProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		a := randomMatrix(rng, 3+rng.Intn(20), 1+rng.Intn(10))
		d, err := ComputeSVD(a)
		if err != nil {
			return false
		}
		var ss float64
		for _, s := range d.S {
			ss += s * s
		}
		return math.Abs(math.Sqrt(ss)-a.FrobeniusNorm()) < 1e-8*(1+a.FrobeniusNorm())
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}
