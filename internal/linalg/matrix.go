// Package linalg provides the dense linear-algebra primitives Jaal's
// summarization pipeline is built on: a row-major dense matrix, a
// one-sided Jacobi singular value decomposition, truncated-SVD helpers,
// and k-means++ clustering.
//
// The package is deliberately small and dependency-free. Jaal's data
// matrices are tall and skinny (n packets by p = 18 header fields), a
// regime in which one-sided Jacobi SVD is exact, numerically robust and
// fast, and in which Lloyd's algorithm with k-means++ seeding converges
// in a handful of iterations.
package linalg

import (
	"errors"
	"fmt"
	"math"
)

// Matrix is a dense, row-major matrix of float64 values.
//
// The zero value is an empty matrix. Use NewMatrix or NewMatrixFromRows to
// construct matrices with storage attached.
type Matrix struct {
	rows, cols int
	data       []float64
}

// NewMatrix returns a rows×cols matrix of zeros.
// It panics if either dimension is negative.
func NewMatrix(rows, cols int) *Matrix {
	if rows < 0 || cols < 0 {
		panic(fmt.Sprintf("linalg: negative matrix dimension %dx%d", rows, cols))
	}
	return &Matrix{rows: rows, cols: cols, data: make([]float64, rows*cols)}
}

// NewMatrixFromRows builds a matrix from a slice of equally sized rows.
// The data is copied. It returns an error if the rows are ragged.
func NewMatrixFromRows(rows [][]float64) (*Matrix, error) {
	if len(rows) == 0 {
		return &Matrix{}, nil
	}
	cols := len(rows[0])
	m := NewMatrix(len(rows), cols)
	for i, r := range rows {
		if len(r) != cols {
			return nil, fmt.Errorf("linalg: ragged rows: row 0 has %d cols, row %d has %d", cols, i, len(r))
		}
		copy(m.Row(i), r)
	}
	return m, nil
}

// NewMatrixFromData wraps an existing row-major backing slice without
// copying. len(data) must equal rows*cols.
func NewMatrixFromData(rows, cols int, data []float64) (*Matrix, error) {
	if len(data) != rows*cols {
		return nil, fmt.Errorf("linalg: data length %d does not match %dx%d", len(data), rows, cols)
	}
	return &Matrix{rows: rows, cols: cols, data: data}, nil
}

// WrapMatrix is the value-typed sibling of NewMatrixFromData: it returns
// a Matrix header (no heap allocation) wrapping the given row-major
// backing slice, for callers that embed the header inside a larger
// struct to keep allocation counts down. It panics when len(data) does
// not equal rows*cols; callers control both.
func WrapMatrix(rows, cols int, data []float64) Matrix {
	if len(data) != rows*cols {
		panic(fmt.Sprintf("linalg: data length %d does not match %dx%d", len(data), rows, cols))
	}
	return Matrix{rows: rows, cols: cols, data: data}
}

// Rows returns the number of rows.
func (m *Matrix) Rows() int { return m.rows }

// Cols returns the number of columns.
func (m *Matrix) Cols() int { return m.cols }

// At returns the element at row i, column j.
func (m *Matrix) At(i, j int) float64 {
	m.check(i, j)
	return m.data[i*m.cols+j]
}

// Set assigns the element at row i, column j.
func (m *Matrix) Set(i, j int, v float64) {
	m.check(i, j)
	m.data[i*m.cols+j] = v
}

func (m *Matrix) check(i, j int) {
	if i < 0 || i >= m.rows || j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: index (%d,%d) out of range for %dx%d matrix", i, j, m.rows, m.cols))
	}
}

// Row returns row i as a slice sharing the matrix's storage.
func (m *Matrix) Row(i int) []float64 {
	if i < 0 || i >= m.rows {
		panic(fmt.Sprintf("linalg: row %d out of range for %dx%d matrix", i, m.rows, m.cols))
	}
	return m.data[i*m.cols : (i+1)*m.cols]
}

// Col returns a copy of column j.
func (m *Matrix) Col(j int) []float64 {
	if j < 0 || j >= m.cols {
		panic(fmt.Sprintf("linalg: col %d out of range for %dx%d matrix", j, m.rows, m.cols))
	}
	out := make([]float64, m.rows)
	for i := 0; i < m.rows; i++ {
		out[i] = m.data[i*m.cols+j]
	}
	return out
}

// Data returns the underlying row-major backing slice. Mutating it mutates
// the matrix.
func (m *Matrix) Data() []float64 { return m.data }

// Clone returns a deep copy of the matrix.
func (m *Matrix) Clone() *Matrix {
	c := NewMatrix(m.rows, m.cols)
	copy(c.data, m.data)
	return c
}

// Transpose returns a newly allocated transpose of m.
func (m *Matrix) Transpose() *Matrix {
	t := NewMatrix(m.cols, m.rows)
	for i := 0; i < m.rows; i++ {
		ri := m.Row(i)
		for j := 0; j < m.cols; j++ {
			t.data[j*t.cols+i] = ri[j]
		}
	}
	return t
}

// Mul returns the matrix product a·b.
// It returns an error when the inner dimensions disagree.
func Mul(a, b *Matrix) (*Matrix, error) {
	if a.cols != b.rows {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d · %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	out := NewMatrix(a.rows, b.cols)
	for i := 0; i < a.rows; i++ {
		ai := a.Row(i)
		oi := out.Row(i)
		for kk := 0; kk < a.cols; kk++ {
			v := ai[kk]
			if v == 0 {
				continue
			}
			bk := b.Row(kk)
			for j := 0; j < b.cols; j++ {
				oi[j] += v * bk[j]
			}
		}
	}
	return out, nil
}

// Sub returns a − b. It returns an error on dimension mismatch.
func Sub(a, b *Matrix) (*Matrix, error) {
	if a.rows != b.rows || a.cols != b.cols {
		return nil, fmt.Errorf("linalg: dimension mismatch %dx%d − %dx%d", a.rows, a.cols, b.rows, b.cols)
	}
	out := NewMatrix(a.rows, a.cols)
	for i := range a.data {
		out.data[i] = a.data[i] - b.data[i]
	}
	return out, nil
}

// Scale multiplies every element of m by s in place and returns m.
func (m *Matrix) Scale(s float64) *Matrix {
	for i := range m.data {
		m.data[i] *= s
	}
	return m
}

// FrobeniusNorm returns the Frobenius norm of m: sqrt(Σ m_ij²).
func (m *Matrix) FrobeniusNorm() float64 {
	var ss float64
	for _, v := range m.data {
		ss += v * v
	}
	return math.Sqrt(ss)
}

// Equal reports whether a and b have identical shape and all elements are
// within tol of each other.
func Equal(a, b *Matrix, tol float64) bool {
	if a.rows != b.rows || a.cols != b.cols {
		return false
	}
	for i := range a.data {
		if math.Abs(a.data[i]-b.data[i]) > tol {
			return false
		}
	}
	return true
}

// String renders the matrix for debugging; large matrices are elided.
func (m *Matrix) String() string {
	const maxShow = 8
	s := fmt.Sprintf("Matrix(%dx%d)", m.rows, m.cols)
	if m.rows > maxShow || m.cols > maxShow {
		return s
	}
	s += "["
	for i := 0; i < m.rows; i++ {
		if i > 0 {
			s += "; "
		}
		for j := 0; j < m.cols; j++ {
			if j > 0 {
				s += " "
			}
			s += fmt.Sprintf("%.4g", m.At(i, j))
		}
	}
	return s + "]"
}

// ErrEmptyMatrix is returned by decompositions handed a matrix with no rows
// or no columns.
var ErrEmptyMatrix = errors.New("linalg: empty matrix")

// Dot returns the dot product of equal-length vectors a and b.
// It panics when the lengths differ; callers control both inputs.
func Dot(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: dot of length %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		s += a[i] * b[i]
	}
	return s
}

// SquaredDistance returns the squared Euclidean distance between a and b.
func SquaredDistance(a, b []float64) float64 {
	if len(a) != len(b) {
		panic(fmt.Sprintf("linalg: distance of length %d and %d", len(a), len(b)))
	}
	var s float64
	for i := range a {
		d := a[i] - b[i]
		s += d * d
	}
	return s
}

// Mean returns the arithmetic mean of xs, or 0 for an empty slice.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	var s float64
	for _, v := range xs {
		s += v
	}
	return s / float64(len(xs))
}

// Variance returns the population variance of xs, or 0 when len(xs) < 2.
func Variance(xs []float64) float64 {
	if len(xs) < 2 {
		return 0
	}
	mu := Mean(xs)
	var s float64
	for _, v := range xs {
		d := v - mu
		s += d * d
	}
	return s / float64(len(xs))
}

// WeightedVariance returns the population variance of values where value i
// appears weights[i] times. It returns 0 when the total weight is < 2.
// Negative weights are treated as 0.
func WeightedVariance(values []float64, weights []float64) float64 {
	if len(values) != len(weights) {
		panic(fmt.Sprintf("linalg: %d values with %d weights", len(values), len(weights)))
	}
	var tot, mean float64
	for i, v := range values {
		w := weights[i]
		if w <= 0 {
			continue
		}
		tot += w
		mean += w * v
	}
	if tot < 2 {
		return 0
	}
	mean /= tot
	var s float64
	for i, v := range values {
		w := weights[i]
		if w <= 0 {
			continue
		}
		d := v - mean
		s += w * d * d
	}
	return s / tot
}
