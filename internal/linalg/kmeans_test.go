package linalg

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

// threeBlobs builds an easily separable dataset of three tight clusters.
func threeBlobs(rng *rand.Rand, perCluster int) (*Matrix, [][]float64) {
	centers := [][]float64{{0, 0}, {10, 10}, {-10, 10}}
	m := NewMatrix(3*perCluster, 2)
	for c, center := range centers {
		for i := 0; i < perCluster; i++ {
			row := m.Row(c*perCluster + i)
			row[0] = center[0] + rng.NormFloat64()*0.1
			row[1] = center[1] + rng.NormFloat64()*0.1
		}
	}
	return m, centers
}

func TestKMeansSeparatesBlobs(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	x, centers := threeBlobs(rng, 40)
	res, err := KMeans(x, 3, rng, KMeansConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// Every true center must be within 0.5 of some learned centroid.
	for _, c := range centers {
		best := math.Inf(1)
		for i := 0; i < 3; i++ {
			if d := SquaredDistance(c, res.Centroids.Row(i)); d < best {
				best = d
			}
		}
		if best > 0.25 {
			t.Fatalf("no centroid near true center %v (d²=%v)", c, best)
		}
	}
	// All cluster sizes must be equal.
	for i, n := range res.Counts {
		if n != 40 {
			t.Fatalf("cluster %d has %d members, want 40", i, n)
		}
	}
}

func TestKMeansCountsSumToRows(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	x := randomMatrix(rng, 100, 4)
	res, err := KMeans(x, 7, rng, KMeansConfig{})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range res.Counts {
		total += c
	}
	if total != 100 {
		t.Fatalf("counts sum to %d, want 100", total)
	}
	if len(res.Assignments) != 100 {
		t.Fatalf("got %d assignments, want 100", len(res.Assignments))
	}
	for i, a := range res.Assignments {
		if a < 0 || a >= 7 {
			t.Fatalf("assignment[%d] = %d out of range", i, a)
		}
	}
}

func TestKMeansKGreaterOrEqualN(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	x := randomMatrix(rng, 5, 3)
	res, err := KMeans(x, 10, rng, KMeansConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Centroids.Rows() != 5 {
		t.Fatalf("got %d centroids, want 5 (one per row)", res.Centroids.Rows())
	}
	for i, a := range res.Assignments {
		if a != i {
			t.Fatalf("assignment[%d] = %d, want %d", i, a, i)
		}
	}
	if res.Inertia != 0 {
		t.Fatalf("inertia = %v, want 0", res.Inertia)
	}
}

func TestKMeansInvalidArgs(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	x := randomMatrix(rng, 10, 2)
	if _, err := KMeans(x, 0, rng, KMeansConfig{}); err == nil {
		t.Fatal("expected error for k=0")
	}
	if _, err := KMeans(NewMatrix(0, 2), 1, rng, KMeansConfig{}); err != ErrEmptyMatrix {
		t.Fatalf("got %v, want ErrEmptyMatrix", err)
	}
	if _, err := KMeans(x, 2, nil, KMeansConfig{}); err == nil {
		t.Fatal("expected error for nil rng")
	}
}

func TestKMeansDeterministicWithSeed(t *testing.T) {
	x := randomMatrix(rand.New(rand.NewSource(5)), 200, 6)
	run := func() *KMeansResult {
		res, err := KMeans(x, 8, rand.New(rand.NewSource(42)), KMeansConfig{})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if !Equal(a.Centroids, b.Centroids, 0) {
		t.Fatal("same seed must produce identical centroids")
	}
	if a.Inertia != b.Inertia {
		t.Fatal("same seed must produce identical inertia")
	}
}

func TestKMeansIdenticalPoints(t *testing.T) {
	x := NewMatrix(20, 3)
	for i := 0; i < 20; i++ {
		row := x.Row(i)
		row[0], row[1], row[2] = 1, 2, 3
	}
	rng := rand.New(rand.NewSource(6))
	res, err := KMeans(x, 4, rng, KMeansConfig{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Inertia > 1e-20 {
		t.Fatalf("inertia = %v, want ~0 for identical points", res.Inertia)
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	x := randomMatrix(rng, 50, 2)
	res, err := KMeans(x, 1, rng, KMeansConfig{})
	if err != nil {
		t.Fatal(err)
	}
	// The single centroid must be the column mean.
	for j := 0; j < 2; j++ {
		if math.Abs(res.Centroids.At(0, j)-Mean(x.Col(j))) > 1e-9 {
			t.Fatalf("centroid %v is not the mean", res.Centroids.Row(0))
		}
	}
}

// Property: inertia never exceeds the inertia of the trivial 1-cluster
// solution, and centroid count/assignment invariants hold.
func TestKMeansInertiaProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(60)
		p := 1 + rng.Intn(6)
		k := 1 + rng.Intn(8)
		x := randomMatrix(rng, n, p)
		res, err := KMeans(x, k, rng, KMeansConfig{})
		if err != nil {
			return false
		}
		one, err := KMeans(x, 1, rand.New(rand.NewSource(seed)), KMeansConfig{})
		if err != nil {
			return false
		}
		if res.Inertia > one.Inertia+1e-9 {
			return false
		}
		sum := 0
		for _, c := range res.Counts {
			sum += c
		}
		return sum == n
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

// Property: every point is assigned to its nearest centroid at convergence.
func TestKMeansNearestAssignmentProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 20 + rng.Intn(40)
		x := randomMatrix(rng, n, 3)
		k := 2 + rng.Intn(5)
		res, err := KMeans(x, k, rng, KMeansConfig{})
		if err != nil {
			return false
		}
		for i := 0; i < n; i++ {
			di := SquaredDistance(x.Row(i), res.Centroids.Row(res.Assignments[i]))
			for c := 0; c < res.Centroids.Rows(); c++ {
				if SquaredDistance(x.Row(i), res.Centroids.Row(c)) < di-1e-9 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}
