package linalg

import (
	"fmt"
	"math"
)

// SVD holds a thin singular value decomposition A = U·diag(S)·Vᵀ of an
// n×p matrix with n ≥ 1, p ≥ 1. U is n×m, S has length m and V is p×m,
// where m = min(n, p). Singular values are sorted in descending order.
type SVD struct {
	// U holds the left singular vectors, one per column.
	U *Matrix
	// S holds the singular values in descending order.
	S []float64
	// V holds the right singular vectors, one per column.
	V *Matrix
}

// jacobiMaxSweeps bounds the number of one-sided Jacobi sweeps. 30 sweeps
// are far beyond what an 18-column matrix needs to converge to machine
// precision; the bound only guards against pathological inputs.
const jacobiMaxSweeps = 30

// ComputeSVD computes a thin SVD of a using the one-sided Jacobi method.
//
// One-sided Jacobi orthogonalizes the columns of a working copy W of A by
// repeated plane rotations; at convergence W = U·diag(S) and the
// accumulated rotations form V. The method is exact (no iteration towards
// an implicitly shifted eigenproblem), unconditionally stable, and costs
// O(n·p²) per sweep — ideal for Jaal's n×18 batch matrices.
//
// Matrices with more columns than rows are handled by decomposing the
// transpose and swapping U and V.
func ComputeSVD(a *Matrix) (*SVD, error) {
	if a.Rows() == 0 || a.Cols() == 0 {
		return nil, ErrEmptyMatrix
	}
	if a.Cols() > a.Rows() {
		svdT, err := ComputeSVD(a.Transpose())
		if err != nil {
			return nil, err
		}
		return &SVD{U: svdT.V, S: svdT.S, V: svdT.U}, nil
	}
	n, p := a.Rows(), a.Cols()
	u := NewMatrix(n, p)
	s := make([]float64, p)
	v := NewMatrix(p, p)
	sc := GetScratch()
	svdInto(a, p, u, s, v, sc)
	PutScratch(sc)
	return &SVD{U: u, S: s, V: v}, nil
}

// svdInto runs one-sided Jacobi on a (which must satisfy rows ≥ cols)
// and writes the leading r factors into u (n×r), s (length r) and v
// (p×r). All intermediates — the working copy, the rotation accumulator
// and the column-norm ordering — come from sc, so the only heap traffic
// is whatever the caller chose for the outputs.
func svdInto(a *Matrix, r int, u *Matrix, s []float64, v *Matrix, sc *Scratch) {
	n, p := a.Rows(), a.Cols()
	w := sc.Matrix(n, p) // working copy whose columns get orthogonalized
	copy(w.data, a.data)
	vAcc := sc.Matrix(p, p)
	for i := 0; i < p; i++ {
		vAcc.data[i*p+i] = 1
	}

	// Convergence threshold on the normalized off-diagonal inner products.
	const eps = 1e-12
	for sweep := 0; sweep < jacobiMaxSweeps; sweep++ {
		converged := true
		for j := 0; j < p-1; j++ {
			for k := j + 1; k < p; k++ {
				// Gram entries for the (j,k) column pair.
				var ajj, akk, ajk float64
				for i := 0; i < n; i++ {
					cj := w.data[i*p+j]
					ck := w.data[i*p+k]
					ajj += cj * cj
					akk += ck * ck
					ajk += cj * ck
				}
				if ajj == 0 || akk == 0 {
					continue
				}
				if math.Abs(ajk) <= eps*math.Sqrt(ajj*akk) {
					continue
				}
				converged = false
				// Jacobi rotation annihilating the (j,k) Gram entry.
				zeta := (akk - ajj) / (2 * ajk)
				t := math.Copysign(1, zeta) / (math.Abs(zeta) + math.Sqrt(1+zeta*zeta))
				c := 1 / math.Sqrt(1+t*t)
				sn := c * t
				rotateColumns(w, j, k, c, sn)
				rotateColumns(vAcc, j, k, c, sn)
			}
		}
		if converged {
			break
		}
	}

	// Column norms of W are the singular values. Order them descending
	// with a stable insertion sort (p ≤ 18 in practice): stable sorts
	// yield a unique permutation, so this matches the sort.SliceStable
	// ordering the decomposition historically used.
	ord := sc.Ints(p)
	nrm := sc.Floats(p)
	for j := 0; j < p; j++ {
		var ss float64
		for i := 0; i < n; i++ {
			cv := w.data[i*p+j]
			ss += cv * cv
		}
		nrm[j] = math.Sqrt(ss)
		ord[j] = j
	}
	for i := 1; i < p; i++ {
		o := ord[i]
		key := nrm[o]
		j := i
		for j > 0 && nrm[ord[j-1]] < key {
			ord[j] = ord[j-1]
			j--
		}
		ord[j] = o
	}

	for out := 0; out < r; out++ {
		j := ord[out]
		s[out] = nrm[j]
		if nrm[j] > 0 {
			inv := 1 / nrm[j]
			for i := 0; i < n; i++ {
				u.data[i*u.cols+out] = w.data[i*p+j] * inv
			}
		} else {
			for i := 0; i < n; i++ {
				u.data[i*u.cols+out] = 0
			}
		}
		for i := 0; i < p; i++ {
			v.data[i*v.cols+out] = vAcc.data[i*p+j]
		}
	}
}

// TruncatedSVDInto computes the leading-r factors of the thin SVD of a
// directly into caller-provided storage — ur (n×r), sr (length r), vr
// (p×r) — using sc for every intermediate. It is the zero-allocation
// path behind batch summarization: the caller typically hands in slab-
// backed outputs and a pooled Scratch, so the decomposition itself does
// not touch the heap. Requires 1 ≤ r ≤ min(n, p); matrices with more
// columns than rows fall back to the allocating transpose path.
func TruncatedSVDInto(a *Matrix, r int, ur *Matrix, sr []float64, vr *Matrix, sc *Scratch) error {
	if a.Rows() == 0 || a.Cols() == 0 {
		return ErrEmptyMatrix
	}
	n, p := a.Rows(), a.Cols()
	m := n
	if p < m {
		m = p
	}
	if r < 1 || r > m {
		return fmt.Errorf("linalg: truncation rank %d out of range [1,%d]", r, m)
	}
	if ur.rows != n || ur.cols != r || vr.rows != p || vr.cols != r || len(sr) != r {
		return fmt.Errorf("linalg: truncated SVD outputs %dx%d/%d/%dx%d do not fit %dx%d rank %d",
			ur.rows, ur.cols, len(sr), vr.rows, vr.cols, n, p, r)
	}
	if p > n {
		d, err := ComputeSVD(a)
		if err != nil {
			return err
		}
		for i := 0; i < n; i++ {
			copy(ur.Row(i), d.U.Row(i)[:r])
		}
		for i := 0; i < p; i++ {
			copy(vr.Row(i), d.V.Row(i)[:r])
		}
		copy(sr, d.S[:r])
		return nil
	}
	svdInto(a, r, ur, sr, vr, sc)
	return nil
}

func identity(n int) *Matrix {
	m := NewMatrix(n, n)
	for i := 0; i < n; i++ {
		m.data[i*n+i] = 1
	}
	return m
}

// rotateColumns applies the Givens rotation [c −s; s c] to columns j and k
// of m in place.
func rotateColumns(m *Matrix, j, k int, c, s float64) {
	p := m.cols
	for i := 0; i < m.rows; i++ {
		cj := m.data[i*p+j]
		ck := m.data[i*p+k]
		m.data[i*p+j] = c*cj - s*ck
		m.data[i*p+k] = s*cj + c*ck
	}
}

// Rank returns the numerical rank of the decomposition: the number of
// singular values exceeding tol · s_max. A tol ≤ 0 defaults to a
// machine-precision based threshold.
func (d *SVD) Rank(tol float64) int {
	if len(d.S) == 0 || d.S[0] == 0 {
		return 0
	}
	if tol <= 0 {
		tol = float64(max(d.U.Rows(), d.V.Rows())) * 2.220446049250313e-16
	}
	cut := tol * d.S[0]
	r := 0
	for _, sv := range d.S {
		if sv > cut {
			r++
		}
	}
	return r
}

// EnergyRank returns the smallest r such that the top-r singular values
// retain at least frac of the total squared singular-value mass
// (Σ_{i<r} s_i² ≥ frac · Σ s_i²). The paper uses frac = 0.90 to argue the
// latent rank of packet-header batches is ≈ 12–16 of 18 (§4.2, Fig. 10).
func (d *SVD) EnergyRank(frac float64) int {
	var total float64
	for _, sv := range d.S {
		total += sv * sv
	}
	if total == 0 {
		return 0
	}
	var acc float64
	for i, sv := range d.S {
		acc += sv * sv
		if acc >= frac*total {
			return i + 1
		}
	}
	return len(d.S)
}

// Truncate returns copies of U, S, V truncated to the leading r components:
// Ur is n×r, Sr has length r, Vr is p×r. It returns an error when r is out
// of range.
func (d *SVD) Truncate(r int) (ur *Matrix, sr []float64, vr *Matrix, err error) {
	if r < 1 || r > len(d.S) {
		return nil, nil, nil, fmt.Errorf("linalg: truncation rank %d out of range [1,%d]", r, len(d.S))
	}
	ur = takeColumns(d.U, r)
	vr = takeColumns(d.V, r)
	sr = make([]float64, r)
	copy(sr, d.S[:r])
	return ur, sr, vr, nil
}

// Reconstruct multiplies U·diag(S)·Vᵀ back into a dense matrix, optionally
// after truncation to rank r (r ≤ 0 means full rank). It is the rank-r
// approximation X̄_p of §4.2, optimal in Frobenius norm by Eckart–Young.
func (d *SVD) Reconstruct(r int) (*Matrix, error) {
	m := len(d.S)
	if r <= 0 || r > m {
		r = m
	}
	n := d.U.Rows()
	p := d.V.Rows()
	out := NewMatrix(n, p)
	for i := 0; i < n; i++ {
		oi := out.Row(i)
		for t := 0; t < r; t++ {
			uis := d.U.data[i*d.U.cols+t] * d.S[t]
			if uis == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				oi[j] += uis * d.V.data[j*d.V.cols+t]
			}
		}
	}
	return out, nil
}

// takeColumns returns a copy of the first r columns of m.
func takeColumns(m *Matrix, r int) *Matrix {
	out := NewMatrix(m.rows, r)
	for i := 0; i < m.rows; i++ {
		copy(out.Row(i), m.Row(i)[:r])
	}
	return out
}

// TruncatedSVD is a convenience wrapper that decomposes a and immediately
// truncates to rank r.
func TruncatedSVD(a *Matrix, r int) (ur *Matrix, sr []float64, vr *Matrix, err error) {
	d, err := ComputeSVD(a)
	if err != nil {
		return nil, nil, nil, err
	}
	return d.Truncate(r)
}
