package summary

import (
	"repro/internal/packet"
	"repro/internal/trace"
)

// Batch couples a full batch of raw headers with its summary-ready state.
type Batch struct {
	// Headers are the buffered packet headers in arrival order.
	Headers []packet.Header
	// Epoch is the batch's unique sequence number at this monitor. It
	// travels inside the summary so the controller can reference the
	// exact batch when it requests raw packets, even when several
	// batches seal within one controller tick.
	Epoch uint64
	// FirstNano and SealedNano bound the batch's capture window (Unix
	// nanoseconds): first header buffered to seal. Both are zero unless
	// epoch tracing was enabled while the batch filled — the clock reads
	// live in internal/trace (trace.NowNano), cost one atomic load when
	// tracing is off, and feed nothing but the capture span, so sealed
	// batches and summaries are identical either way.
	FirstNano, SealedNano int64
	// Shed counts the packets the sketch pass dropped before this batch
	// while it filled: Headers represents len(Headers)+Shed offered
	// packets, so summaries over subsampled batches stay honestly
	// weighted. Zero whenever shedding is off.
	Shed uint64
}

// ShedFraction returns the fraction of the batch's offered packets that
// were shed before buffering (0 when nothing was shed).
func (b *Batch) ShedFraction() float64 {
	offered := uint64(len(b.Headers)) + b.Shed
	if offered == 0 {
		return 0
	}
	return float64(b.Shed) / float64(offered)
}

// Buffer accumulates packet headers at a monitor until a batch of the
// configured size is full (§4.1). It also implements the short-lived
// centroid→raw-packets table of §7: after a batch is summarized, the raw
// headers are retained — keyed by batch sequence and centroid index — so
// the controller's feedback loop can request them (§5.3). Retention
// expires two controller ticks after sealing, matching the paper's
// per-epoch hash-table deletion.
//
// Buffer is not safe for concurrent use; each monitor owns one.
type Buffer struct {
	batchSize int
	pending   []packet.Header
	// firstNano stamps the current batch's first buffered header (0
	// while tracing is off; see Batch.FirstNano).
	firstNano int64
	// seq numbers sealed batches.
	seq uint64
	// shed counts packets dropped by the sketch pass since the last
	// seal; stamped onto the next sealed batch (see NoteShed).
	shed uint64
	// tick is the controller-tick clock driven by AdvanceEpoch.
	tick uint64

	retained map[uint64]*retainedBatch
}

type retainedBatch struct {
	byCentroid map[int][]packet.Header
	sealedTick uint64
	// k is the centroid count of the summary the batch was retained
	// under, bounding the centroid index space.
	k int
}

// NewBuffer returns a Buffer sealing batches of batchSize packets.
func NewBuffer(batchSize int) *Buffer {
	if batchSize < 1 {
		panic("summary: batch size must be ≥ 1")
	}
	return &Buffer{
		batchSize: batchSize,
		pending:   make([]packet.Header, 0, batchSize),
		retained:  make(map[uint64]*retainedBatch),
	}
}

// Add buffers one header. When the buffer reaches the batch size it seals
// and returns the batch (and a true flag); otherwise it returns nil, false.
func (b *Buffer) Add(h packet.Header) (*Batch, bool) {
	b.pending = append(b.pending, h)
	if len(b.pending) == 1 {
		b.firstNano = trace.NowNano()
	}
	if len(b.pending) < b.batchSize {
		return nil, false
	}
	return b.seal(), true
}

// Pending returns the number of packets buffered but not yet sealed.
func (b *Buffer) Pending() int { return len(b.pending) }

// NoteShed records n packets dropped by the sketch pass instead of
// buffered. The running count is stamped onto the next sealed batch so
// per-batch accounting stays honest: a fully-shed window (Flush with
// nothing pending) seals no batch and advances no sequence number, and
// its shed count carries over to the next batch that does seal.
func (b *Buffer) NoteShed(n int) { b.shed += uint64(n) }

// ShedPending returns the shed count accumulated since the last seal.
func (b *Buffer) ShedPending() uint64 { return b.shed }

// Flush seals whatever is buffered, returning nil when empty. It is used
// when the controller polls monitors for summaries mid-batch (§5.1).
func (b *Buffer) Flush() *Batch {
	if len(b.pending) == 0 {
		return nil
	}
	return b.seal()
}

func (b *Buffer) seal() *Batch {
	batch := &Batch{Headers: b.pending, Epoch: b.seq, FirstNano: b.firstNano, SealedNano: trace.NowNano(), Shed: b.shed}
	b.seq++
	b.pending = make([]packet.Header, 0, b.batchSize)
	b.firstNano = 0
	b.shed = 0
	return batch
}

// Retain records the centroid→packets mapping for a summarized batch so
// that raw packets can be served to the feedback loop.
func (b *Buffer) Retain(batch *Batch, s *Summary) {
	table := make(map[int][]packet.Header, s.K())
	for i, c := range s.Assignments {
		table[c] = append(table[c], batch.Headers[i])
	}
	b.retained[batch.Epoch] = &retainedBatch{byCentroid: table, sealedTick: b.tick, k: s.K()}
}

// RawPackets returns the raw headers that were assigned to the given
// centroid in the batch with the given sequence number, or nil when the
// batch's retention has expired.
func (b *Buffer) RawPackets(epoch uint64, centroid int) []packet.Header {
	rb, ok := b.retained[epoch]
	if !ok {
		return nil
	}
	return rb.byCentroid[centroid]
}

// RawBatch reassembles the full retained batch for the given sequence
// number (order is by centroid, not arrival), or nil after expiry. The
// feedback loop's finer-grained-summary path re-summarizes this batch at
// a higher k (§5.3).
func (b *Buffer) RawBatch(epoch uint64) []packet.Header {
	rb, ok := b.retained[epoch]
	if !ok {
		return nil
	}
	var out []packet.Header
	for c := 0; c < rb.k; c++ {
		out = append(out, rb.byCentroid[c]...)
	}
	return out
}

// AdvanceEpoch moves the buffer to the next controller tick, expiring
// retention for batches sealed before the previous tick. The monitor
// calls this on the controller's epoch tick (every 2 s in the paper's
// deployment).
func (b *Buffer) AdvanceEpoch() uint64 {
	b.tick++
	// The expiry predicate is per-entry, so which order entries are
	// visited cannot change which survive.
	//jaalvet:ignore mapiter — per-entry expiry; the deletion set is independent of iteration order
	for seq, rb := range b.retained {
		if rb.sealedTick+1 < b.tick {
			delete(b.retained, seq)
		}
	}
	return b.tick
}

// Epoch returns the current controller-tick clock.
func (b *Buffer) Epoch() uint64 { return b.tick }
