package summary

import (
	"math/rand"
	"testing"
)

// Shed counts accumulate between seals and are stamped onto the next
// sealed batch, so per-batch accounting reflects the true offered
// volume the batch stands for.
func TestBufferShedAccounting(t *testing.T) {
	b := NewBuffer(10)
	rng := rand.New(rand.NewSource(31))
	hs := randomHeaders(rng, 25)

	// Interleave: 10 buffered with 5 shed → first batch.
	for i := 0; i < 5; i++ {
		b.NoteShed(1)
	}
	var batch *Batch
	for _, h := range hs[:10] {
		batch, _ = b.Add(h)
	}
	if batch == nil {
		t.Fatal("first batch not sealed")
	}
	if batch.Shed != 5 {
		t.Fatalf("first batch shed = %d, want 5", batch.Shed)
	}
	if got, want := batch.ShedFraction(), 5.0/15.0; got != want {
		t.Fatalf("shed fraction = %v, want %v", got, want)
	}

	// A shed-free batch reports zero.
	for _, h := range hs[10:20] {
		batch, _ = b.Add(h)
	}
	if batch == nil || batch.Shed != 0 || batch.ShedFraction() != 0 {
		t.Fatalf("shed-free batch carries shed state: %+v", batch)
	}
	if batch.Epoch != 1 {
		t.Fatalf("second batch epoch = %d, want 1", batch.Epoch)
	}
}

// A fully-shed window — only NoteShed, nothing buffered — flushes to
// nil without advancing seq, and its shed count carries over to the
// next batch that actually seals.
func TestBufferFlushFullyShedWindow(t *testing.T) {
	b := NewBuffer(10)
	b.NoteShed(40)
	if b.ShedPending() != 40 {
		t.Fatalf("shed pending = %d, want 40", b.ShedPending())
	}
	if got := b.Flush(); got != nil {
		t.Fatalf("fully-shed flush returned a batch: %+v", got)
	}
	if b.ShedPending() != 40 {
		t.Fatal("nil flush must not consume the shed count")
	}

	rng := rand.New(rand.NewSource(32))
	var batch *Batch
	for _, h := range randomHeaders(rng, 10) {
		batch, _ = b.Add(h)
	}
	if batch == nil {
		t.Fatal("batch not sealed")
	}
	if batch.Epoch != 0 {
		t.Fatalf("batch epoch = %d, want 0 — the nil flush advanced seq", batch.Epoch)
	}
	if batch.Shed != 40 {
		t.Fatalf("carried-over shed = %d, want 40", batch.Shed)
	}
	if b.ShedPending() != 0 {
		t.Fatal("seal must consume the shed count")
	}
}

// Retention and raw-packet fetch round-trip unchanged for a subsampled
// batch: the shed packets are gone, but every surviving header is
// retrievable by centroid and reassembles into the full batch.
func TestBufferRetentionRoundTripUnderShedding(t *testing.T) {
	const n = 60
	b := NewBuffer(n)
	rng := rand.New(rand.NewSource(33))
	var batch *Batch
	for i, h := range randomHeaders(rng, 2*n) {
		if i%2 == 0 {
			b.NoteShed(1) // shed every other offered packet
			continue
		}
		batch, _ = b.Add(h)
	}
	if batch == nil {
		t.Fatal("batch not sealed")
	}
	if batch.Shed != n || batch.ShedFraction() != 0.5 {
		t.Fatalf("subsampled batch accounting: shed=%d fraction=%v", batch.Shed, batch.ShedFraction())
	}

	s, err := NewSummarizer(Config{BatchSize: n, Rank: 8, Centroids: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize(batch.Headers, 0, batch.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	b.Retain(batch, sum)

	// Per-centroid fetches return exactly the surviving members.
	fetched := 0
	for c := 0; c < sum.K(); c++ {
		hs := b.RawPackets(batch.Epoch, c)
		if len(hs) != sum.Counts[c] {
			t.Fatalf("centroid %d: fetched %d headers, counts say %d", c, len(hs), sum.Counts[c])
		}
		fetched += len(hs)
	}
	if fetched != n {
		t.Fatalf("fetched %d headers across centroids, want %d", fetched, n)
	}

	// Full-batch reassembly matches the kept multiset.
	raw := b.RawBatch(batch.Epoch)
	if len(raw) != n {
		t.Fatalf("raw batch has %d headers, want %d", len(raw), n)
	}
	want := map[Key]int{}
	for _, h := range batch.Headers {
		want[keyOf(h)]++
	}
	for _, h := range raw {
		want[keyOf(h)]--
	}
	for k, cnt := range want {
		if cnt != 0 {
			t.Fatalf("header multiset mismatch at %v (%+d)", k, cnt)
		}
	}
}
