package summary_test

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/summary"
)

// ExampleSummarizer shows the §4 pipeline on a toy batch: buffer
// headers, summarize at a chosen (n, r, k) operating point, and inspect
// the representatives the controller would receive.
func ExampleSummarizer() {
	// A toy batch: 100 copies of a SYN towards one server, with only
	// the source port varying.
	headers := make([]packet.Header, 100)
	for i := range headers {
		headers[i] = packet.Header{
			SrcIP:    0xC0A80001,
			DstIP:    0x0A000001,
			Protocol: packet.ProtoTCP,
			TTL:      64,
			SrcPort:  uint16(1024 + i),
			DstPort:  80,
			Flags:    packet.FlagSYN,
			Window:   512,
		}
	}

	szr, err := summary.NewSummarizer(summary.Config{
		BatchSize: 100, Rank: 4, Centroids: 2, Seed: 1,
	})
	if err != nil {
		panic(err)
	}
	s, err := szr.Summarize(headers, 0, 0)
	if err != nil {
		panic(err)
	}

	reps, err := s.Representatives()
	if err != nil {
		panic(err)
	}
	total := 0
	for _, c := range s.Counts {
		total += c
	}
	fmt.Printf("kind=%s k=%d packets=%d elements=%d\n", s.Kind, s.K(), total, s.Elements())
	// All packets share the SYN signature, so every representative has
	// the SYN entry ≈ 1.
	for i := 0; i < reps.Rows(); i++ {
		fmt.Printf("centroid %d: syn=%.0f dst_port=%.0f\n",
			i,
			reps.At(i, int(packet.FieldSYN)),
			packet.Denormalize(packet.FieldDstPort, reps.At(i, int(packet.FieldDstPort))))
	}
	// Output:
	// kind=combined k=2 packets=100 elements=38
	// centroid 0: syn=1 dst_port=80
	// centroid 1: syn=1 dst_port=80
}
