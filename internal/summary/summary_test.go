package summary

import (
	"errors"
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"repro/internal/linalg"
	"repro/internal/packet"
)

// randomHeaders fabricates n headers with realistic-ish field spreads.
func randomHeaders(rng *rand.Rand, n int) []packet.Header {
	hs := make([]packet.Header, n)
	for i := range hs {
		hs[i] = packet.Header{
			SrcIP:       rng.Uint32(),
			DstIP:       rng.Uint32(),
			Protocol:    packet.ProtoTCP,
			TTL:         uint8(32 + rng.Intn(96)),
			TotalLength: uint16(40 + rng.Intn(1460)),
			IPID:        uint16(rng.Intn(65536)),
			TOS:         0,
			SrcPort:     uint16(1024 + rng.Intn(64512)),
			DstPort:     uint16(rng.Intn(1024)),
			Seq:         rng.Uint32(),
			Ack:         rng.Uint32(),
			DataOffset:  5,
			Flags:       packet.FlagACK,
			Window:      uint16(rng.Intn(65536)),
		}
	}
	return hs
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	bad := []Config{
		{BatchSize: 0, Rank: 12, Centroids: 10},
		{BatchSize: 100, Rank: 0, Centroids: 10},
		{BatchSize: 100, Rank: 19, Centroids: 10},
		{BatchSize: 100, Rank: 12, Centroids: 0},
		{BatchSize: 100, Rank: 12, Centroids: 10, MinBatch: 101},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Fatalf("config %d should be invalid: %+v", i, c)
		}
	}
}

func TestSizeFormulas(t *testing.T) {
	// Paper parameters: p = 18, n = 1000, k = 200, r = 12.
	p, k, r := 18, 200, 12
	if got := CombinedSize(k, p); got != 200*19 {
		t.Fatalf("combined size = %d, want %d", got, 200*19)
	}
	if got := SplitSize(r, k, p); got != 12*(200+18+1)+200 {
		t.Fatalf("split size = %d, want %d", got, 12*219+200)
	}
	// At the paper's operating point the combined encoding is smaller:
	// 12·219+200 = 2828 vs 200·19 = 3800 → split wins.
	if !PreferSplit(r, k, p) {
		t.Fatal("split must be preferred at r=12, k=200, p=18")
	}
	// With tiny k the combined form wins: k=5 → 5·19=95 vs 12·24+5=293.
	if PreferSplit(12, 5, 18) {
		t.Fatal("combined must be preferred at r=12, k=5")
	}
}

func TestSummarizeBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	hs := randomHeaders(rng, 300)
	s, err := NewSummarizer(Config{BatchSize: 300, Rank: 12, Centroids: 60, MinBatch: 50, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize(hs, 3, 9)
	if err != nil {
		t.Fatal(err)
	}
	if sum.MonitorID != 3 || sum.Epoch != 9 {
		t.Fatalf("labels not stamped: %+v", sum)
	}
	if sum.K() != 60 {
		t.Fatalf("k = %d, want 60", sum.K())
	}
	if sum.BatchSize != 300 {
		t.Fatalf("batch size = %d, want 300", sum.BatchSize)
	}
	total := 0
	for _, c := range sum.Counts {
		total += c
	}
	if total != 300 {
		t.Fatalf("counts sum to %d, want 300", total)
	}
	if len(sum.Assignments) != 300 {
		t.Fatalf("%d assignments, want 300", len(sum.Assignments))
	}
}

func TestSummarizeTooSmall(t *testing.T) {
	s, err := NewSummarizer(Config{BatchSize: 100, Rank: 5, Centroids: 10, MinBatch: 60, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(2))
	_, err = s.Summarize(randomHeaders(rng, 10), 0, 0)
	if !errors.Is(err, ErrBatchTooSmall) {
		t.Fatalf("got %v, want ErrBatchTooSmall", err)
	}
}

func TestSummarizeKindSelection(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	hs := randomHeaders(rng, 200)

	// r=12, k=40, p=18: split = 12·59+40 = 748, combined = 40·19 = 760 → split.
	s1, _ := NewSummarizer(Config{BatchSize: 200, Rank: 12, Centroids: 40, Seed: 1})
	sum, err := s1.Summarize(hs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != KindSplit {
		t.Fatalf("kind = %v, want split", sum.Kind)
	}
	if sum.Centroids.Cols() != 12 {
		t.Fatalf("split centroid width %d, want 12", sum.Centroids.Cols())
	}

	// r=12, k=10: split = 12·29+10 = 358, combined = 190 → combined.
	s2, _ := NewSummarizer(Config{BatchSize: 200, Rank: 12, Centroids: 10, Seed: 1})
	sum2, err := s2.Summarize(hs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum2.Kind != KindCombined {
		t.Fatalf("kind = %v, want combined", sum2.Kind)
	}
	if sum2.Centroids.Cols() != packet.NumFields {
		t.Fatalf("combined centroid width %d, want %d", sum2.Centroids.Cols(), packet.NumFields)
	}
}

func TestRepresentativesEquivalence(t *testing.T) {
	// The split and combined encodings must describe (nearly) the same
	// representatives: reconstructing Ũ_r·Σ_r·V_rᵀ from a split summary
	// of the same batch approximates the combined centroids. We verify
	// the weaker but deterministic property: representatives of a split
	// summary lie in normalized field space with small reconstruction
	// residual vs the batch.
	rng := rand.New(rand.NewSource(4))
	hs := randomHeaders(rng, 400)
	s, _ := NewSummarizer(Config{BatchSize: 400, Rank: 16, Centroids: 80, Seed: 5})
	sum, err := s.Summarize(hs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != KindSplit {
		t.Skipf("expected split at this operating point, got %v", sum.Kind)
	}
	reps, err := sum.Representatives()
	if err != nil {
		t.Fatal(err)
	}
	if reps.Rows() != 80 || reps.Cols() != packet.NumFields {
		t.Fatalf("representatives are %dx%d", reps.Rows(), reps.Cols())
	}
	relErr, err := ApproximationError(hs, sum)
	if err != nil {
		t.Fatal(err)
	}
	if relErr > 0.35 {
		t.Fatalf("relative approximation error %.3f too large", relErr)
	}
}

func TestApproximationErrorShrinksWithK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	hs := randomHeaders(rng, 500)
	errAt := func(k int) float64 {
		s, _ := NewSummarizer(Config{BatchSize: 500, Rank: 16, Centroids: k, Seed: 6})
		sum, err := s.Summarize(hs, 0, 0)
		if err != nil {
			t.Fatal(err)
		}
		e, err := ApproximationError(hs, sum)
		if err != nil {
			t.Fatal(err)
		}
		return e
	}
	if e10, e100 := errAt(10), errAt(100); e100 >= e10 {
		t.Fatalf("error must shrink with k: e(10)=%.4f, e(100)=%.4f", e10, e100)
	}
}

func TestElementsMatchesFormula(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	hs := randomHeaders(rng, 200)
	s, _ := NewSummarizer(Config{BatchSize: 200, Rank: 12, Centroids: 40, Seed: 1})
	sum, err := s.Summarize(hs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	want := SplitSize(12, 40, packet.NumFields)
	if sum.Kind == KindCombined {
		want = CombinedSize(40, packet.NumFields)
	}
	if sum.Elements() != want {
		t.Fatalf("Elements() = %d, want %d", sum.Elements(), want)
	}
}

func TestMarshalRoundTripCombined(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	hs := randomHeaders(rng, 150)
	s, _ := NewSummarizer(Config{BatchSize: 150, Rank: 12, Centroids: 8, Seed: 2})
	sum, err := s.Summarize(hs, 5, 11)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != KindCombined {
		t.Fatalf("expected combined summary, got %v", sum.Kind)
	}
	roundTrip(t, sum)
}

func TestMarshalRoundTripSplit(t *testing.T) {
	rng := rand.New(rand.NewSource(8))
	hs := randomHeaders(rng, 150)
	s, _ := NewSummarizer(Config{BatchSize: 150, Rank: 10, Centroids: 50, Seed: 2})
	sum, err := s.Summarize(hs, 6, 12)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Kind != KindSplit {
		t.Fatalf("expected split summary, got %v", sum.Kind)
	}
	roundTrip(t, sum)
}

func roundTrip(t *testing.T, sum *Summary) {
	t.Helper()
	data, err := sum.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	got, err := Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.Kind != sum.Kind || got.MonitorID != sum.MonitorID || got.Epoch != sum.Epoch ||
		got.BatchSize != sum.BatchSize || got.Rank != sum.Rank {
		t.Fatalf("metadata mismatch: got %+v", got)
	}
	// Elements travel as float32; round-tripping quantizes to ~1e-7
	// relative precision.
	const tol = 1e-5
	if !linalg.Equal(got.Centroids, sum.Centroids, tol) {
		t.Fatal("centroids mismatch after round trip")
	}
	for i, c := range sum.Counts {
		if got.Counts[i] != c {
			t.Fatalf("count %d mismatch", i)
		}
	}
	if sum.Kind == KindSplit {
		if !linalg.Equal(got.V, sum.V, tol) {
			t.Fatal("V mismatch after round trip")
		}
		for i, v := range sum.Sigma {
			if math.Abs(got.Sigma[i]-v) > tol*(1+math.Abs(v)) {
				t.Fatalf("sigma %d mismatch", i)
			}
		}
	}
	if got.Assignments != nil {
		t.Fatal("assignments must not travel on the wire")
	}
}

func TestUnmarshalCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	hs := randomHeaders(rng, 100)
	s, _ := NewSummarizer(Config{BatchSize: 100, Rank: 8, Centroids: 30, Seed: 2})
	sum, err := s.Summarize(hs, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	data, err := sum.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{
		"empty":      {},
		"short":      data[:len(data)/2],
		"bad kind":   append([]byte{99}, data[1:]...),
		"trailing":   append(append([]byte{}, data...), 0xAB),
		"header cut": data[:codecHeaderSize-1],
	}
	for name, c := range cases {
		if _, err := Unmarshal(c); err == nil {
			t.Fatalf("case %q: expected unmarshal error", name)
		}
	}
}

func TestBufferBatching(t *testing.T) {
	b := NewBuffer(5)
	rng := rand.New(rand.NewSource(10))
	hs := randomHeaders(rng, 12)
	var sealed int
	for _, h := range hs {
		if batch, ok := b.Add(h); ok {
			sealed++
			if len(batch.Headers) != 5 {
				t.Fatalf("sealed batch of %d, want 5", len(batch.Headers))
			}
		}
	}
	if sealed != 2 {
		t.Fatalf("sealed %d batches, want 2", sealed)
	}
	if b.Pending() != 2 {
		t.Fatalf("pending = %d, want 2", b.Pending())
	}
	fl := b.Flush()
	if fl == nil || len(fl.Headers) != 2 {
		t.Fatalf("flush returned %+v", fl)
	}
	if b.Flush() != nil {
		t.Fatal("second flush must return nil")
	}
}

func TestBufferRetention(t *testing.T) {
	b := NewBuffer(50)
	rng := rand.New(rand.NewSource(11))
	var batch *Batch
	for _, h := range randomHeaders(rng, 50) {
		batch, _ = b.Add(h)
	}
	if batch == nil {
		t.Fatal("expected sealed batch")
	}
	s, _ := NewSummarizer(Config{BatchSize: 50, Rank: 8, Centroids: 5, Seed: 3})
	sum, err := s.Summarize(batch.Headers, 0, batch.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	b.Retain(batch, sum)

	total := 0
	for c := 0; c < sum.K(); c++ {
		pkts := b.RawPackets(batch.Epoch, c)
		if len(pkts) != sum.Counts[c] {
			t.Fatalf("centroid %d: %d raw packets, count says %d", c, len(pkts), sum.Counts[c])
		}
		total += len(pkts)
	}
	if total != 50 {
		t.Fatalf("retained %d packets, want 50", total)
	}

	// Retention expires after two epoch advances.
	b.AdvanceEpoch()
	if b.RawPackets(batch.Epoch, 0) == nil {
		t.Fatal("previous epoch must still be retained")
	}
	b.AdvanceEpoch()
	if b.RawPackets(batch.Epoch, 0) != nil {
		t.Fatal("expired epoch must be dropped")
	}
}

func TestBufferEpoch(t *testing.T) {
	b := NewBuffer(10)
	if b.Epoch() != 0 {
		t.Fatalf("initial epoch = %d", b.Epoch())
	}
	if e := b.AdvanceEpoch(); e != 1 || b.Epoch() != 1 {
		t.Fatalf("epoch after advance = %d", e)
	}
}

// Property: counts always sum to the batch size and marshalling round-trips
// for random operating points.
func TestSummarizeInvariantsProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 60 + rng.Intn(140)
		k := 2 + rng.Intn(40)
		r := 2 + rng.Intn(16)
		s, err := NewSummarizer(Config{BatchSize: n, Rank: r, Centroids: k, Seed: seed})
		if err != nil {
			return false
		}
		sum, err := s.Summarize(randomHeaders(rng, n), 1, 2)
		if err != nil {
			return false
		}
		total := 0
		for _, c := range sum.Counts {
			total += c
		}
		if total != n {
			return false
		}
		data, err := sum.Marshal()
		if err != nil {
			return false
		}
		back, err := Unmarshal(data)
		if err != nil {
			return false
		}
		return linalg.Equal(back.Centroids, sum.Centroids, 1e-5)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 15}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkSummarizeDefault(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	hs := randomHeaders(rng, 1000)
	s, err := NewSummarizer(DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Summarize(hs, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
