package summary

import (
	"math/rand"
	"testing"

	"repro/internal/packet"
)

func TestBufferRawBatch(t *testing.T) {
	b := NewBuffer(60)
	rng := rand.New(rand.NewSource(20))
	var batch *Batch
	for _, h := range randomHeaders(rng, 60) {
		batch, _ = b.Add(h)
	}
	if batch == nil {
		t.Fatal("batch not sealed")
	}
	s, err := NewSummarizer(Config{BatchSize: 60, Rank: 8, Centroids: 12, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	sum, err := s.Summarize(batch.Headers, 0, batch.Epoch)
	if err != nil {
		t.Fatal(err)
	}
	b.Retain(batch, sum)

	raw := b.RawBatch(batch.Epoch)
	if len(raw) != 60 {
		t.Fatalf("raw batch has %d headers, want 60", len(raw))
	}
	// Same multiset of headers (order is by centroid).
	want := map[Key]int{}
	for _, h := range batch.Headers {
		want[keyOf(h)]++
	}
	for _, h := range raw {
		want[keyOf(h)]--
	}
	for k, n := range want {
		if n != 0 {
			t.Fatalf("header multiset mismatch at %v (%+d)", k, n)
		}
	}

	if b.RawBatch(999) != nil {
		t.Fatal("unknown batch must yield nil")
	}
	b.AdvanceEpoch()
	b.AdvanceEpoch()
	if b.RawBatch(batch.Epoch) != nil {
		t.Fatal("expired batch must yield nil")
	}
}

// Key condenses a header for multiset comparison.
type Key struct {
	src, dst uint32
	sp, dp   uint16
	seq      uint32
}

func keyOf(h packet.Header) Key {
	return Key{src: h.SrcIP, dst: h.DstIP, sp: h.SrcPort, dp: h.DstPort, seq: h.Seq}
}
