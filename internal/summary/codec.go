package summary

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/linalg"
)

// Wire format of a serialized summary (all integers big-endian):
//
//	byte    kind (1 = combined, 2 = split)
//	uint32  monitor ID
//	uint64  epoch
//	uint32  batch size n
//	uint16  rank r
//	uint16  k (centroid count)
//	uint16  centroid width (p for combined, r for split)
//	k ×     uint32 counts
//	k·w ×   float32 centroid elements (row-major)
//	split only:
//	  uint16 p, r × float32 Σ, p·r × float32 V (row-major)
//
// Elements travel as float32: every value is a normalized header field
// (or a factor of such values) in [−1, 1], where float32's ~1e-7
// resolution is far below any matching threshold. Halving the element
// size is what puts the summary transfer cost at the paper's ≈30–35 %
// of raw headers.
//
// Assignments are monitor-local and never serialized.

const codecHeaderSize = 1 + 4 + 8 + 4 + 2 + 2 + 2

// Marshal serializes the summary to its wire format.
func (s *Summary) Marshal() ([]byte, error) {
	if s.Kind != KindCombined && s.Kind != KindSplit {
		return nil, fmt.Errorf("summary: cannot marshal kind %v", s.Kind)
	}
	k := s.Centroids.Rows()
	w := s.Centroids.Cols()
	if len(s.Counts) != k {
		return nil, fmt.Errorf("summary: %d counts for %d centroids", len(s.Counts), k)
	}
	size := codecHeaderSize + 4*k + elementSize*k*w
	if s.Kind == KindSplit {
		if s.V == nil || len(s.Sigma) != s.Rank || s.V.Cols() != s.Rank {
			return nil, fmt.Errorf("summary: malformed split summary (rank %d, |Σ|=%d)", s.Rank, len(s.Sigma))
		}
		size += 2 + elementSize*len(s.Sigma) + elementSize*s.V.Rows()*s.V.Cols()
	}
	buf := make([]byte, 0, size)

	buf = append(buf, byte(s.Kind))
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.MonitorID))
	buf = binary.BigEndian.AppendUint64(buf, s.Epoch)
	buf = binary.BigEndian.AppendUint32(buf, uint32(s.BatchSize))
	buf = binary.BigEndian.AppendUint16(buf, uint16(s.Rank))
	buf = binary.BigEndian.AppendUint16(buf, uint16(k))
	buf = binary.BigEndian.AppendUint16(buf, uint16(w))
	for _, c := range s.Counts {
		buf = binary.BigEndian.AppendUint32(buf, uint32(c))
	}
	buf = appendFloats(buf, s.Centroids.Data())
	if s.Kind == KindSplit {
		buf = binary.BigEndian.AppendUint16(buf, uint16(s.V.Rows()))
		buf = appendFloats(buf, s.Sigma)
		buf = appendFloats(buf, s.V.Data())
	}
	return buf, nil
}

// Unmarshal parses a wire-format summary.
func Unmarshal(data []byte) (*Summary, error) {
	if len(data) < codecHeaderSize {
		return nil, fmt.Errorf("summary: truncated header: %d bytes", len(data))
	}
	s := &Summary{}
	s.Kind = Kind(data[0])
	if s.Kind != KindCombined && s.Kind != KindSplit {
		return nil, fmt.Errorf("summary: unknown kind byte %d", data[0])
	}
	s.MonitorID = int(binary.BigEndian.Uint32(data[1:]))
	s.Epoch = binary.BigEndian.Uint64(data[5:])
	s.BatchSize = int(binary.BigEndian.Uint32(data[13:]))
	s.Rank = int(binary.BigEndian.Uint16(data[17:]))
	k := int(binary.BigEndian.Uint16(data[19:]))
	w := int(binary.BigEndian.Uint16(data[21:]))
	off := codecHeaderSize

	if k == 0 || w == 0 {
		return nil, fmt.Errorf("summary: empty centroid block k=%d w=%d", k, w)
	}
	need := 4*k + elementSize*k*w
	if len(data)-off < need {
		return nil, fmt.Errorf("summary: truncated body: have %d, need %d", len(data)-off, need)
	}
	s.Counts = make([]int, k)
	for i := range s.Counts {
		s.Counts[i] = int(binary.BigEndian.Uint32(data[off:]))
		off += 4
	}
	cdata := make([]float64, k*w)
	off = readFloats(data, off, cdata)
	var err error
	s.Centroids, err = linalg.NewMatrixFromData(k, w, cdata)
	if err != nil {
		return nil, err
	}

	if s.Kind == KindSplit {
		if len(data)-off < 2 {
			return nil, fmt.Errorf("summary: truncated split block")
		}
		p := int(binary.BigEndian.Uint16(data[off:]))
		off += 2
		if w != s.Rank {
			return nil, fmt.Errorf("summary: split centroid width %d != rank %d", w, s.Rank)
		}
		need = elementSize*s.Rank + elementSize*p*s.Rank
		if len(data)-off < need {
			return nil, fmt.Errorf("summary: truncated split factors: have %d, need %d", len(data)-off, need)
		}
		s.Sigma = make([]float64, s.Rank)
		off = readFloats(data, off, s.Sigma)
		vdata := make([]float64, p*s.Rank)
		off = readFloats(data, off, vdata)
		s.V, err = linalg.NewMatrixFromData(p, s.Rank, vdata)
		if err != nil {
			return nil, err
		}
	}
	if off != len(data) {
		return nil, fmt.Errorf("summary: %d trailing bytes", len(data)-off)
	}
	return s, nil
}

// EncodedLen computes how many leading bytes of data one encoded
// summary occupies, from the header fields alone — without decoding the
// body. The transport uses it to split a MsgSummary payload into the
// summary proper and an optional trailing trace-context block
// (internal/trace): the summary codec itself stays strict about
// trailing bytes, so the split must happen above it.
func EncodedLen(data []byte) (int, error) {
	if len(data) < codecHeaderSize {
		return 0, fmt.Errorf("summary: truncated header: %d bytes", len(data))
	}
	kind := Kind(data[0])
	if kind != KindCombined && kind != KindSplit {
		return 0, fmt.Errorf("summary: unknown kind byte %d", data[0])
	}
	rank := int(binary.BigEndian.Uint16(data[17:]))
	k := int(binary.BigEndian.Uint16(data[19:]))
	w := int(binary.BigEndian.Uint16(data[21:]))
	n := codecHeaderSize + 4*k + elementSize*k*w
	if kind == KindSplit {
		if len(data) < n+2 {
			return 0, fmt.Errorf("summary: truncated split block")
		}
		p := int(binary.BigEndian.Uint16(data[n:]))
		n += 2 + elementSize*rank + elementSize*p*rank
	}
	if len(data) < n {
		return 0, fmt.Errorf("summary: truncated body: have %d, need %d", len(data), n)
	}
	return n, nil
}

// elementSize is the wire size of one summary element (float32).
const elementSize = 4

func appendFloats(buf []byte, xs []float64) []byte {
	for _, x := range xs {
		buf = binary.BigEndian.AppendUint32(buf, math.Float32bits(float32(x)))
	}
	return buf
}

func readFloats(data []byte, off int, dst []float64) int {
	for i := range dst {
		dst[i] = float64(math.Float32frombits(binary.BigEndian.Uint32(data[off:])))
		off += 4
	}
	return off
}
