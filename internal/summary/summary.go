// Package summary implements Jaal's in-network packet summarization (§4).
//
// A monitor buffers packet headers until it holds a batch of n packets,
// organizes them as an n×p matrix X of normalized header fields, reduces
// the fields mode with a truncated SVD (rank r), reduces the packets mode
// with k-means++ clustering (k centroids), and ships the result — the
// packet summary — to the central inference engine.
//
// Two equivalent encodings exist with different sizes (§4.3):
//
//   - a combined summary S1 clusters the rank-reduced matrix X̄_p directly
//     and carries k centroids of p fields plus a membership-count vector:
//     k·(p+1) elements;
//   - a split summary S2 clusters the left singular vectors U_r and carries
//     the k reduced centroids, Σ_r, V_r and the counts:
//     r·(k+p+1)+k elements.
//
// Summarize picks whichever is smaller for the configured (r, k, p).
package summary

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/obs"
	"repro/internal/packet"
	"repro/internal/trace"
)

// Summarization observability: the latency and batch-size profile of
// the SVD+k-means pipeline, the encoding split (Fig. 11's S1-vs-S2
// choice observed live), the elements shipped (the unit of §8's
// communication accounting) and the arena's reuse behaviour. All
// write-only side channels — none of these feed back into the
// computation, so same-seed runs are identical with collection on or
// off.
var (
	hSummarize = obs.NewHistogram("jaal_summarize_seconds",
		"wall time of one batch summarization (SVD + k-means)", obs.DurationBuckets())
	hBatchPackets = obs.NewHistogram("jaal_summarize_batch_packets",
		"packets per summarized batch", obs.ExpBuckets(16, 2, 12))
	cCombined = obs.NewCounter("jaal_summary_encodings_total{kind=\"combined\"}",
		"summaries produced by encoding kind")
	cSplit = obs.NewCounter("jaal_summary_encodings_total{kind=\"split\"}",
		"summaries produced by encoding kind")
	cElements = obs.NewCounter("jaal_summary_elements_total",
		"total summary elements produced (4 wire bytes each)")
	cArenaTakes = obs.NewCounter("jaal_summary_arena_takes_total",
		"summaries carved from arena slabs")
	cArenaChunks = obs.NewCounter("jaal_summary_arena_chunk_allocs_total",
		"fresh arena slab allocations (takes/chunks ≈ reuse factor)")
)

// Kind discriminates the two summary encodings.
type Kind uint8

// Summary kinds.
const (
	// KindCombined is S1: k full-width centroids plus counts.
	KindCombined Kind = 1
	// KindSplit is S2: k reduced centroids, Σ_r·V_rᵀ factors plus counts.
	KindSplit Kind = 2
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCombined:
		return "combined"
	case KindSplit:
		return "split"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config holds the summarization design parameters of §4.
type Config struct {
	// BatchSize is n, the number of packets per summarized batch.
	BatchSize int
	// Rank is r, the retained SVD rank (1 ≤ r ≤ p). The paper finds
	// r = 12 the best accuracy/cost tradeoff (Fig. 5, Fig. 10).
	Rank int
	// Centroids is k, the number of representative packets. The paper
	// finds k = n/5 (e.g. 200 for n = 1000) near-saturating (Fig. 4).
	Centroids int
	// MinBatch is n_min: a monitor asked for a summary with fewer than
	// MinBatch buffered packets declines, because SVD and clustering
	// degrade on tiny batches (§5.1).
	MinBatch int
	// Seed seeds the deterministic RNG used by k-means++ so summaries
	// are reproducible.
	Seed int64
}

// DefaultConfig returns the operating point the paper converges on:
// n = 1000, r = 12, k = 200, n_min = 600.
func DefaultConfig() Config {
	return Config{BatchSize: 1000, Rank: 12, Centroids: 200, MinBatch: 600, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.BatchSize < 1:
		return fmt.Errorf("summary: batch size %d < 1", c.BatchSize)
	case c.Rank < 1 || c.Rank > packet.NumFields:
		return fmt.Errorf("summary: rank %d outside [1,%d]", c.Rank, packet.NumFields)
	case c.Centroids < 1:
		return fmt.Errorf("summary: centroids %d < 1", c.Centroids)
	case c.MinBatch < 0 || c.MinBatch > c.BatchSize:
		return fmt.Errorf("summary: min batch %d outside [0,%d]", c.MinBatch, c.BatchSize)
	}
	return nil
}

// CombinedSize returns the element count of an S1 summary: k(p+1).
func CombinedSize(k, p int) int { return k * (p + 1) }

// SplitSize returns the element count of an S2 summary: r(k+p+1)+k.
func SplitSize(r, k, p int) int { return r*(k+p+1) + k }

// PreferSplit reports whether the split encoding is strictly smaller for
// the given parameters, i.e. r(k+p+1)+k < k(p+1) (§4.3).
func PreferSplit(r, k, p int) bool { return SplitSize(r, k, p) < CombinedSize(k, p) }

// Summary is one monitor's packet summary for one batch.
//
// For KindCombined, Centroids is the k×p matrix X̃_p of representative
// packets in normalized field space. For KindSplit, Centroids is the k×r
// matrix Ũ_r of clustered left singular vectors, and Sigma/V carry the
// factors needed to reconstruct representatives at the controller.
type Summary struct {
	Kind Kind
	// MonitorID identifies the producing monitor.
	MonitorID int
	// Epoch is the summarization epoch this batch belongs to.
	Epoch uint64
	// BatchSize is the number of packets summarized (n).
	BatchSize int
	// Rank is the retained SVD rank (r).
	Rank int

	// Centroids is k×p (combined) or k×r (split).
	Centroids *linalg.Matrix
	// Counts[i] is the number of packets assigned to centroid i.
	Counts []int
	// Sigma holds the r retained singular values (split only).
	Sigma []float64
	// V is the p×r right-singular-vector matrix (split only).
	V *linalg.Matrix

	// Assignments maps each packet in the batch to its centroid. It is
	// monitor-local state — never transmitted — and backs the
	// centroid→raw-packets table used by the feedback loop (§7).
	Assignments []int

	// centroidStore and vStore back Centroids and V when the summarizer
	// inlines the matrix headers into the Summary itself instead of
	// allocating them separately — part of keeping a batch summarization
	// at ~zero heap allocations. Summaries built elsewhere (e.g. the
	// codec) leave them unused.
	centroidStore, vStore linalg.Matrix
}

// K returns the number of centroids in the summary.
func (s *Summary) K() int { return s.Centroids.Rows() }

// Elements returns the number of elements the summary transmits, the
// communication-cost unit used throughout §8. On the wire each element
// is a float32 (see codec.go), so bytes = 4 × Elements().
func (s *Summary) Elements() int {
	switch s.Kind {
	case KindCombined:
		return CombinedSize(s.K(), s.Centroids.Cols())
	case KindSplit:
		return SplitSize(s.Rank, s.K(), s.V.Rows())
	default:
		return 0
	}
}

// Representatives returns the k×p matrix of representative packets in
// normalized field space, reconstructing Ũ_r·Σ_r·V_rᵀ for split summaries
// (§5.1). Combined summaries return their centroids directly.
func (s *Summary) Representatives() (*linalg.Matrix, error) {
	switch s.Kind {
	case KindCombined:
		return s.Centroids, nil
	case KindSplit:
		k, r := s.Centroids.Rows(), s.Rank
		p := s.V.Rows()
		out := linalg.NewMatrix(k, p)
		for i := 0; i < k; i++ {
			ui := s.Centroids.Row(i)
			oi := out.Row(i)
			for t := 0; t < r; t++ {
				us := ui[t] * s.Sigma[t]
				if us == 0 {
					continue
				}
				for j := 0; j < p; j++ {
					oi[j] += us * s.V.At(j, t)
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("summary: unknown kind %v", s.Kind)
	}
}

// ErrBatchTooSmall is returned when a batch has fewer than MinBatch
// packets (§5.1: summaries over tiny batches hurt accuracy).
var ErrBatchTooSmall = errors.New("summary: batch smaller than configured minimum")

// Summarizer turns batches of packet headers into summaries. It is the
// per-monitor summarization process of §7: it owns a reusable RNG and
// scratch state, so one Summarizer must not be shared across goroutines.
type Summarizer struct {
	cfg Config
	rng *rand.Rand
	mem arena
}

// arenaBatch is how many summaries' worth of retained storage one arena
// chunk holds. Batching the slab allocations amortizes the per-summary
// heap traffic to ~3/arenaBatch allocations; a chunk is garbage once
// every summary carved from it has expired (retention is two epochs),
// so the memory overhead per monitor stays bounded by a few batches.
const arenaBatch = 8

// arena batch-allocates the retained outputs of summaries — the float
// slab (centroids, Σ, V), the int slab (counts, assignments) and the
// Summary struct itself. Unlike linalg.Scratch it is never reset:
// carved memory is owned by the summaries handed to callers, and chunks
// are simply abandoned to the garbage collector once exhausted.
type arena struct {
	floats []float64
	ints   []int
	sums   []Summary
}

// take carves one summary's retained storage: nf float64s, ni ints and
// a zeroed Summary.
func (a *arena) take(nf, ni int) ([]float64, []int, *Summary) {
	cArenaTakes.Inc()
	if len(a.floats) < nf {
		cArenaChunks.Inc()
		a.floats = make([]float64, arenaBatch*nf)
	}
	fs := a.floats[:nf:nf]
	a.floats = a.floats[nf:]
	if len(a.ints) < ni {
		a.ints = make([]int, arenaBatch*ni)
	}
	is := a.ints[:ni:ni]
	a.ints = a.ints[ni:]
	if len(a.sums) == 0 {
		a.sums = make([]Summary, arenaBatch)
	}
	s := &a.sums[0]
	a.sums = a.sums[1:]
	return fs, is, s
}

// NewSummarizer validates cfg and returns a ready Summarizer.
func NewSummarizer(cfg Config) (*Summarizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Summarizer{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the summarizer's configuration.
func (s *Summarizer) Config() Config { return s.cfg }

// BuildMatrix assembles the normalized n×p batch matrix X̄ of §4.1 from
// headers.
func BuildMatrix(headers []packet.Header) *linalg.Matrix {
	m := linalg.NewMatrix(len(headers), packet.NumFields)
	for i := range headers {
		headers[i].NormalizedVector(m.Row(i))
	}
	return m
}

// Summarize produces the summary of one batch, picking the smaller of the
// combined and split encodings. The monitor/epoch labels are stamped into
// the result. It returns ErrBatchTooSmall when len(headers) < MinBatch.
//
// The whole computation runs on reused storage: intermediates (the batch
// matrix, SVD working state, k-means buffers) live in a pooled
// linalg.Scratch, and the retained outputs are carved from the
// summarizer's arena, so steady-state summarization performs well under
// one heap allocation per batch (BenchmarkSummarizeBatch). The heavy
// inner loops (Lloyd assignment) additionally fan out across the shared
// worker pool with deterministic reduction, so summaries are
// reproducible by seed regardless of core count.
func (s *Summarizer) Summarize(headers []packet.Header, monitorID int, epoch uint64) (*Summary, error) {
	n := len(headers)
	if n < s.cfg.MinBatch || n == 0 {
		return nil, fmt.Errorf("%w: %d < %d", ErrBatchTooSmall, n, s.cfg.MinBatch)
	}
	// One instrumentation point feeds both the aggregate histogram and,
	// when tracing, the monitor's staged summarize span (keyed by the
	// batch sequence number so the controller's timeline can tie it to
	// the capture window and raw fetches of the same batch).
	defer trace.StartMonitorSpan(hSummarize, trace.StageSummarize, monitorID, epoch).End()
	hBatchPackets.Observe(float64(n))
	sc := linalg.GetScratch()
	defer linalg.PutScratch(sc)

	p := packet.NumFields
	x := sc.Matrix(n, p)
	for i := range headers {
		headers[i].NormalizedVector(x.Row(i))
	}

	r := s.cfg.Rank
	k := s.cfg.Centroids
	if k > n {
		k = n
	}

	if PreferSplit(r, k, p) {
		// Split: cluster the rows of U_r (packets in reduced space).
		// Retained storage — the k×r centroids, Σ_r, the p×r V and the
		// counts/assignments — comes from the arena as two slabs.
		slabF, slabI, sum := s.mem.take(k*r+r+p*r, k+n)
		sigma := slabF[k*r : k*r+r]
		sum.centroidStore = linalg.WrapMatrix(k, r, slabF[:k*r])
		sum.vStore = linalg.WrapMatrix(p, r, slabF[k*r+r:])
		counts, assign := slabI[:k:k], slabI[k:]

		ur := sc.Matrix(n, r)
		if err := linalg.TruncatedSVDInto(x, r, ur, sigma, &sum.vStore, sc); err != nil {
			return nil, fmt.Errorf("summary: svd: %w", err)
		}
		if _, _, err := linalg.KMeansInto(ur, k, s.rng, linalg.KMeansConfig{}, sc, &sum.centroidStore, assign, counts); err != nil {
			return nil, fmt.Errorf("summary: kmeans: %w", err)
		}
		sum.Kind = KindSplit
		sum.MonitorID = monitorID
		sum.Epoch = epoch
		sum.BatchSize = n
		sum.Rank = r
		sum.Centroids = &sum.centroidStore
		sum.Counts = counts
		sum.Sigma = sigma
		sum.V = &sum.vStore
		sum.Assignments = assign
		cSplit.Inc()
		cElements.Add(int64(sum.Elements()))
		return sum, nil
	}

	// Combined: reconstruct X̄_p = U_r·Σ_r·V_rᵀ, then cluster it. Only
	// the k×p centroids and the counts/assignments are retained; the
	// factors and the reconstruction are scratch intermediates.
	slabF, slabI, sum := s.mem.take(k*p, k+n)
	sum.centroidStore = linalg.WrapMatrix(k, p, slabF)
	counts, assign := slabI[:k:k], slabI[k:]

	ur := sc.Matrix(n, r)
	sr := sc.Floats(r)
	vr := sc.Matrix(p, r)
	if err := linalg.TruncatedSVDInto(x, r, ur, sr, vr, sc); err != nil {
		return nil, fmt.Errorf("summary: svd: %w", err)
	}
	xp := sc.Matrix(n, p)
	reconstructRankRInto(ur, sr, vr, xp)
	if _, _, err := linalg.KMeansInto(xp, k, s.rng, linalg.KMeansConfig{}, sc, &sum.centroidStore, assign, counts); err != nil {
		return nil, fmt.Errorf("summary: kmeans: %w", err)
	}
	sum.Kind = KindCombined
	sum.MonitorID = monitorID
	sum.Epoch = epoch
	sum.BatchSize = n
	sum.Rank = r
	sum.Centroids = &sum.centroidStore
	sum.Counts = counts
	sum.Assignments = assign
	cCombined.Inc()
	cElements.Add(int64(sum.Elements()))
	return sum, nil
}

// reconstructRankRInto multiplies U_r·diag(S_r)·V_rᵀ into out (n×p),
// which must be zeroed — scratch buffers are handed out zeroed.
func reconstructRankRInto(ur *linalg.Matrix, sr []float64, vr *linalg.Matrix, out *linalg.Matrix) {
	n, r := ur.Rows(), ur.Cols()
	p := vr.Rows()
	for i := 0; i < n; i++ {
		ui := ur.Row(i)
		oi := out.Row(i)
		for t := 0; t < r; t++ {
			us := ui[t] * sr[t]
			if us == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				oi[j] += us * vr.At(j, t)
			}
		}
	}
}

// ApproximationError returns ‖X̄ − R·Bᵀ‖_F / ‖X̄‖_F: the relative error of
// representing each packet of the batch by its centroid (Eq. 4). It is a
// diagnostic used by tests and the compression experiments.
func ApproximationError(headers []packet.Header, s *Summary) (float64, error) {
	x := BuildMatrix(headers)
	reps, err := s.Representatives()
	if err != nil {
		return 0, err
	}
	if len(s.Assignments) != x.Rows() {
		return 0, fmt.Errorf("summary: %d assignments for %d packets", len(s.Assignments), x.Rows())
	}
	var num float64
	for i := 0; i < x.Rows(); i++ {
		num += linalg.SquaredDistance(x.Row(i), reps.Row(s.Assignments[i]))
	}
	den := x.FrobeniusNorm()
	if den == 0 {
		return 0, nil
	}
	return math.Sqrt(num) / den, nil
}
