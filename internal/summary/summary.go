// Package summary implements Jaal's in-network packet summarization (§4).
//
// A monitor buffers packet headers until it holds a batch of n packets,
// organizes them as an n×p matrix X of normalized header fields, reduces
// the fields mode with a truncated SVD (rank r), reduces the packets mode
// with k-means++ clustering (k centroids), and ships the result — the
// packet summary — to the central inference engine.
//
// Two equivalent encodings exist with different sizes (§4.3):
//
//   - a combined summary S1 clusters the rank-reduced matrix X̄_p directly
//     and carries k centroids of p fields plus a membership-count vector:
//     k·(p+1) elements;
//   - a split summary S2 clusters the left singular vectors U_r and carries
//     the k reduced centroids, Σ_r, V_r and the counts:
//     r·(k+p+1)+k elements.
//
// Summarize picks whichever is smaller for the configured (r, k, p).
package summary

import (
	"errors"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/linalg"
	"repro/internal/packet"
)

// Kind discriminates the two summary encodings.
type Kind uint8

// Summary kinds.
const (
	// KindCombined is S1: k full-width centroids plus counts.
	KindCombined Kind = 1
	// KindSplit is S2: k reduced centroids, Σ_r·V_rᵀ factors plus counts.
	KindSplit Kind = 2
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KindCombined:
		return "combined"
	case KindSplit:
		return "split"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Config holds the summarization design parameters of §4.
type Config struct {
	// BatchSize is n, the number of packets per summarized batch.
	BatchSize int
	// Rank is r, the retained SVD rank (1 ≤ r ≤ p). The paper finds
	// r = 12 the best accuracy/cost tradeoff (Fig. 5, Fig. 10).
	Rank int
	// Centroids is k, the number of representative packets. The paper
	// finds k = n/5 (e.g. 200 for n = 1000) near-saturating (Fig. 4).
	Centroids int
	// MinBatch is n_min: a monitor asked for a summary with fewer than
	// MinBatch buffered packets declines, because SVD and clustering
	// degrade on tiny batches (§5.1).
	MinBatch int
	// Seed seeds the deterministic RNG used by k-means++ so summaries
	// are reproducible.
	Seed int64
}

// DefaultConfig returns the operating point the paper converges on:
// n = 1000, r = 12, k = 200, n_min = 600.
func DefaultConfig() Config {
	return Config{BatchSize: 1000, Rank: 12, Centroids: 200, MinBatch: 600, Seed: 1}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	switch {
	case c.BatchSize < 1:
		return fmt.Errorf("summary: batch size %d < 1", c.BatchSize)
	case c.Rank < 1 || c.Rank > packet.NumFields:
		return fmt.Errorf("summary: rank %d outside [1,%d]", c.Rank, packet.NumFields)
	case c.Centroids < 1:
		return fmt.Errorf("summary: centroids %d < 1", c.Centroids)
	case c.MinBatch < 0 || c.MinBatch > c.BatchSize:
		return fmt.Errorf("summary: min batch %d outside [0,%d]", c.MinBatch, c.BatchSize)
	}
	return nil
}

// CombinedSize returns the element count of an S1 summary: k(p+1).
func CombinedSize(k, p int) int { return k * (p + 1) }

// SplitSize returns the element count of an S2 summary: r(k+p+1)+k.
func SplitSize(r, k, p int) int { return r*(k+p+1) + k }

// PreferSplit reports whether the split encoding is strictly smaller for
// the given parameters, i.e. r(k+p+1)+k < k(p+1) (§4.3).
func PreferSplit(r, k, p int) bool { return SplitSize(r, k, p) < CombinedSize(k, p) }

// Summary is one monitor's packet summary for one batch.
//
// For KindCombined, Centroids is the k×p matrix X̃_p of representative
// packets in normalized field space. For KindSplit, Centroids is the k×r
// matrix Ũ_r of clustered left singular vectors, and Sigma/V carry the
// factors needed to reconstruct representatives at the controller.
type Summary struct {
	Kind Kind
	// MonitorID identifies the producing monitor.
	MonitorID int
	// Epoch is the summarization epoch this batch belongs to.
	Epoch uint64
	// BatchSize is the number of packets summarized (n).
	BatchSize int
	// Rank is the retained SVD rank (r).
	Rank int

	// Centroids is k×p (combined) or k×r (split).
	Centroids *linalg.Matrix
	// Counts[i] is the number of packets assigned to centroid i.
	Counts []int
	// Sigma holds the r retained singular values (split only).
	Sigma []float64
	// V is the p×r right-singular-vector matrix (split only).
	V *linalg.Matrix

	// Assignments maps each packet in the batch to its centroid. It is
	// monitor-local state — never transmitted — and backs the
	// centroid→raw-packets table used by the feedback loop (§7).
	Assignments []int
}

// K returns the number of centroids in the summary.
func (s *Summary) K() int { return s.Centroids.Rows() }

// Elements returns the number of elements the summary transmits, the
// communication-cost unit used throughout §8. On the wire each element
// is a float32 (see codec.go), so bytes = 4 × Elements().
func (s *Summary) Elements() int {
	switch s.Kind {
	case KindCombined:
		return CombinedSize(s.K(), s.Centroids.Cols())
	case KindSplit:
		return SplitSize(s.Rank, s.K(), s.V.Rows())
	default:
		return 0
	}
}

// Representatives returns the k×p matrix of representative packets in
// normalized field space, reconstructing Ũ_r·Σ_r·V_rᵀ for split summaries
// (§5.1). Combined summaries return their centroids directly.
func (s *Summary) Representatives() (*linalg.Matrix, error) {
	switch s.Kind {
	case KindCombined:
		return s.Centroids, nil
	case KindSplit:
		k, r := s.Centroids.Rows(), s.Rank
		p := s.V.Rows()
		out := linalg.NewMatrix(k, p)
		for i := 0; i < k; i++ {
			ui := s.Centroids.Row(i)
			oi := out.Row(i)
			for t := 0; t < r; t++ {
				us := ui[t] * s.Sigma[t]
				if us == 0 {
					continue
				}
				for j := 0; j < p; j++ {
					oi[j] += us * s.V.At(j, t)
				}
			}
		}
		return out, nil
	default:
		return nil, fmt.Errorf("summary: unknown kind %v", s.Kind)
	}
}

// ErrBatchTooSmall is returned when a batch has fewer than MinBatch
// packets (§5.1: summaries over tiny batches hurt accuracy).
var ErrBatchTooSmall = errors.New("summary: batch smaller than configured minimum")

// Summarizer turns batches of packet headers into summaries. It is the
// per-monitor summarization process of §7: it owns a reusable RNG and
// scratch state, so one Summarizer must not be shared across goroutines.
type Summarizer struct {
	cfg Config
	rng *rand.Rand
}

// NewSummarizer validates cfg and returns a ready Summarizer.
func NewSummarizer(cfg Config) (*Summarizer, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &Summarizer{cfg: cfg, rng: rand.New(rand.NewSource(cfg.Seed))}, nil
}

// Config returns the summarizer's configuration.
func (s *Summarizer) Config() Config { return s.cfg }

// BuildMatrix assembles the normalized n×p batch matrix X̄ of §4.1 from
// headers.
func BuildMatrix(headers []packet.Header) *linalg.Matrix {
	m := linalg.NewMatrix(len(headers), packet.NumFields)
	for i := range headers {
		headers[i].NormalizedVector(m.Row(i))
	}
	return m
}

// Summarize produces the summary of one batch, picking the smaller of the
// combined and split encodings. The monitor/epoch labels are stamped into
// the result. It returns ErrBatchTooSmall when len(headers) < MinBatch.
func (s *Summarizer) Summarize(headers []packet.Header, monitorID int, epoch uint64) (*Summary, error) {
	n := len(headers)
	if n < s.cfg.MinBatch || n == 0 {
		return nil, fmt.Errorf("%w: %d < %d", ErrBatchTooSmall, n, s.cfg.MinBatch)
	}
	x := BuildMatrix(headers)

	r := s.cfg.Rank
	k := s.cfg.Centroids
	if k > n {
		k = n
	}
	d, err := linalg.ComputeSVD(x)
	if err != nil {
		return nil, fmt.Errorf("summary: svd: %w", err)
	}
	ur, sr, vr, err := d.Truncate(r)
	if err != nil {
		return nil, fmt.Errorf("summary: truncate: %w", err)
	}

	if PreferSplit(r, k, packet.NumFields) {
		// Split: cluster the rows of U_r (packets in reduced space).
		res, err := linalg.KMeans(ur, k, s.rng, linalg.KMeansConfig{})
		if err != nil {
			return nil, fmt.Errorf("summary: kmeans: %w", err)
		}
		return &Summary{
			Kind:        KindSplit,
			MonitorID:   monitorID,
			Epoch:       epoch,
			BatchSize:   n,
			Rank:        r,
			Centroids:   res.Centroids,
			Counts:      res.Counts,
			Sigma:       sr,
			V:           vr,
			Assignments: res.Assignments,
		}, nil
	}

	// Combined: reconstruct X̄_p = U_r·Σ_r·V_rᵀ, then cluster it.
	xp := reconstructRankR(ur, sr, vr)
	res, err := linalg.KMeans(xp, k, s.rng, linalg.KMeansConfig{})
	if err != nil {
		return nil, fmt.Errorf("summary: kmeans: %w", err)
	}
	return &Summary{
		Kind:        KindCombined,
		MonitorID:   monitorID,
		Epoch:       epoch,
		BatchSize:   n,
		Rank:        r,
		Centroids:   res.Centroids,
		Counts:      res.Counts,
		Assignments: res.Assignments,
	}, nil
}

// reconstructRankR multiplies U_r·diag(S_r)·V_rᵀ.
func reconstructRankR(ur *linalg.Matrix, sr []float64, vr *linalg.Matrix) *linalg.Matrix {
	n, r := ur.Rows(), ur.Cols()
	p := vr.Rows()
	out := linalg.NewMatrix(n, p)
	for i := 0; i < n; i++ {
		ui := ur.Row(i)
		oi := out.Row(i)
		for t := 0; t < r; t++ {
			us := ui[t] * sr[t]
			if us == 0 {
				continue
			}
			for j := 0; j < p; j++ {
				oi[j] += us * vr.At(j, t)
			}
		}
	}
	return out
}

// ApproximationError returns ‖X̄ − R·Bᵀ‖_F / ‖X̄‖_F: the relative error of
// representing each packet of the batch by its centroid (Eq. 4). It is a
// diagnostic used by tests and the compression experiments.
func ApproximationError(headers []packet.Header, s *Summary) (float64, error) {
	x := BuildMatrix(headers)
	reps, err := s.Representatives()
	if err != nil {
		return 0, err
	}
	if len(s.Assignments) != x.Rows() {
		return 0, fmt.Errorf("summary: %d assignments for %d packets", len(s.Assignments), x.Rows())
	}
	var num float64
	for i := 0; i < x.Rows(); i++ {
		num += linalg.SquaredDistance(x.Row(i), reps.Row(s.Assignments[i]))
	}
	den := x.FrobeniusNorm()
	if den == 0 {
		return 0, nil
	}
	return math.Sqrt(num) / den, nil
}
