// Package netsim is a discrete-time network simulator for the evaluation
// scenarios that need a dataplane: it models routers with finite link
// capacity, traffic forwarding along shortest paths, replication of
// traversing traffic toward a central analysis engine, and the resulting
// congestion losses.
//
// It exists to reproduce Fig. 7: when monitors copy raw packets to a
// central engine, the copied traffic competes with normal traffic for
// link capacity (throughput collapse) and overloads the engine (packet
// loss → missed detections). The simulator operates at per-tick packet
// aggregates rather than individual packet events; that is sufficient
// because Fig. 7's quantities — throughput and delivered fraction — are
// rates.
package netsim

import (
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/obs"
	"repro/internal/topology"
	"repro/internal/trace"
)

// sortedNodes returns the load map's keys in ascending order — the
// deterministic walk order for the float accumulations below.
func sortedNodes(m map[topology.NodeID]float64) []topology.NodeID {
	nodes := make([]topology.NodeID, 0, len(m))
	for n := range m {
		nodes = append(nodes, n)
	}
	sort.Slice(nodes, func(i, j int) bool { return nodes[i] < nodes[j] })
	return nodes
}

// Simulation observability: per-run link-utilization distribution and
// the headline loss gauges. Gauges reflect the most recent Run — the
// live per-tick view when the simulator drives a long scenario —
// while the counters and histogram accumulate across runs.
var (
	cRuns = obs.NewCounter("jaal_netsim_runs_total",
		"steady-state simulation runs executed")
	cDemands = obs.NewCounter("jaal_netsim_demands_total",
		"traffic demands routed across all runs")
	hLinkUtil = obs.NewHistogram("jaal_netsim_link_utilization",
		"per-link offered/capacity ratio, observed once per loaded link per run",
		[]float64{0.1, 0.25, 0.5, 0.75, 0.9, 1, 1.25, 1.5, 2, 4, 8})
	gWorstUtil = obs.NewGauge("jaal_netsim_worst_link_utilization",
		"max offered/capacity over links in the last run")
	gThroughputLoss = obs.NewGauge("jaal_netsim_throughput_loss_fraction",
		"switch-centric normal-traffic throughput loss of the last run (Fig. 7a)")
	gAccuracyLoss = obs.NewGauge("jaal_netsim_accuracy_loss_fraction",
		"replicated attack traffic lost before processing in the last run (Fig. 7b)")
)

// Config sizes a simulation.
type Config struct {
	// Topology is the router graph.
	Topology *topology.Topology
	// LinkCapacity is packets per tick a link can carry.
	LinkCapacity float64
	// RouterCapacity is packets per tick a router can process. Copied
	// traffic consumes router capacity exactly like normal traffic,
	// which is how replication "takes a hit when it processes the
	// copied traffic" (§8): a router past capacity drops
	// proportionally. Zero disables router limits.
	RouterCapacity float64
	// EngineCapacity is packets per tick the central analysis engine
	// can process before it starts dropping (DPI engines fall over past
	// ~20 Gbps, §2).
	EngineCapacity float64
	// EngineNode is where the central engine attaches.
	EngineNode topology.NodeID
	// Monitors are the tap locations.
	Monitors []topology.NodeID
	// ReplicationFraction is the share of traversing traffic each
	// monitor copies toward the engine (the X axis of Fig. 7).
	ReplicationFraction float64
	// DedupReplication, when true, copies each flow only at the first
	// monitor on its path (Jaal's exactly-once monitoring, §6). The
	// vanilla raw-copy baseline of Fig. 7 leaves it false: every
	// monitor a flow traverses copies it, which is precisely the
	// duplicate-monitoring waste the flow-assignment module eliminates.
	DedupReplication bool
	// SubstrateCapacity models the shared physical substrate the
	// paper's 370 virtual switches run on (5 servers): the aggregate
	// packets per tick the substrate can process across all routers.
	// Past it, all processing degrades proportionally. Zero disables
	// the substrate limit.
	SubstrateCapacity float64
	// CollapseExponent γ sharpens overload behaviour: the substrate
	// processing factor is (capacity/work)^γ. γ = 1 is proportional
	// (fluid) loss; γ = 2 models the non-graceful failure the paper
	// observes for DPI pipelines past saturation (§2: >50 % loss past
	// 20 Gbps) — queue overflow plus retransmission amplification.
	// Zero or negative defaults to 1.
	CollapseExponent float64
	// Seed randomizes flow endpoints.
	Seed int64
	// Rand optionally supplies the RNG directly. When nil, New derives
	// a private rand.New(rand.NewSource(Seed)). Every Simulator owns
	// its RNG either way — the package never touches the global
	// math/rand state — so concurrent simulations with equal seeds are
	// reproducible and race-free. Supply Rand only to share a stream
	// across stages of one single-goroutine scenario.
	Rand *rand.Rand
}

// Validate checks the configuration.
func (c Config) Validate() error {
	switch {
	case c.Topology == nil:
		return fmt.Errorf("netsim: nil topology")
	case c.LinkCapacity <= 0:
		return fmt.Errorf("netsim: link capacity must be positive")
	case c.EngineCapacity <= 0:
		return fmt.Errorf("netsim: engine capacity must be positive")
	case c.ReplicationFraction < 0 || c.ReplicationFraction > 1:
		return fmt.Errorf("netsim: replication fraction %v outside [0,1]", c.ReplicationFraction)
	case int(c.EngineNode) < 0 || int(c.EngineNode) >= c.Topology.NumNodes():
		return fmt.Errorf("netsim: engine node %d out of range", c.EngineNode)
	}
	return nil
}

// Survival returns the fraction of offered traffic that survives a
// resource of the given capacity under the simulator's proportional
// (fluid) loss model: 1 while the offer fits, capacity/offered past
// saturation. Run applies it per hop to links and routers; it is
// exported so fault-injection presets (internal/faultnet) derive their
// frame-loss probabilities from the same loss model the evaluation
// scenarios use.
func Survival(offered, capacity float64) float64 {
	if capacity <= 0 || offered <= capacity {
		return 1
	}
	return capacity / offered
}

// Demand is one aggregate traffic demand between two gateways.
type Demand struct {
	Src, Dst topology.NodeID
	// Rate is offered packets per tick.
	Rate float64
	// AttackRate is the attack-labeled share of Rate.
	AttackRate float64
}

// Result summarizes a simulation run.
type Result struct {
	// OfferedRate is the total normal traffic offered per tick.
	OfferedRate float64
	// DeliveredRate is the normal traffic delivered per tick after
	// congestion drops.
	DeliveredRate float64
	// ReplicatedRate is the copied traffic offered toward the engine.
	ReplicatedRate float64
	// EngineReceivedRate is replicated traffic that survived transit.
	EngineReceivedRate float64
	// EngineProcessedRate is what the engine could actually process.
	EngineProcessedRate float64
	// AttackOfferedRate / AttackReplicatedRate / AttackProcessedRate
	// track the attack subset, from which detection-accuracy loss
	// follows: replicated attack packets dropped before or at the
	// engine are invisible to it.
	AttackOfferedRate    float64
	AttackReplicatedRate float64
	AttackProcessedRate  float64
	// WorstLinkUtilization is max over links of offered/capacity.
	WorstLinkUtilization float64
	// NormalSwitchWork is Σ over routers of the normal traffic each
	// would process uncongested; NormalSwitchWorkDone is the same after
	// capacity contention with copied traffic.
	NormalSwitchWork     float64
	NormalSwitchWorkDone float64
}

// ThroughputLossFraction returns the Fig. 7a Y axis: the paper defines
// network throughput as "the average rate at which normal traffic is
// processed at each switch (this takes a hit when it processes the
// copied traffic)". The loss is the traffic-weighted average, over
// switches, of the normal-traffic processing reduction caused by copied
// traffic competing for switch capacity.
func (r *Result) ThroughputLossFraction() float64 {
	if r.NormalSwitchWork == 0 {
		return 0
	}
	return 1 - r.NormalSwitchWorkDone/r.NormalSwitchWork
}

// DeliveryLossFraction returns the end-to-end flow view: the relative
// loss of delivered normal traffic vs offered.
func (r *Result) DeliveryLossFraction() float64 {
	if r.OfferedRate == 0 {
		return 0
	}
	return 1 - r.DeliveredRate/r.OfferedRate
}

// AccuracyLossFraction returns the fraction of the *replicated* attack
// traffic lost before processing — Fig. 7b's detection-accuracy loss,
// which the paper attributes to packet losses from congestion and engine
// overload ("this loss is a direct artifact of missing attacks because
// of packet losses"). It is measured relative to lossless delivery of
// the replicated stream, so 0 % replication gives 0 loss and full
// replication with a saturated core gives the paper's ≈75 %.
func (r *Result) AccuracyLossFraction() float64 {
	if r.AttackReplicatedRate == 0 {
		return 0
	}
	return 1 - r.AttackProcessedRate/r.AttackReplicatedRate
}

// Simulator runs steady-state load analysis over a topology.
type Simulator struct {
	cfg Config
	rng *rand.Rand
	// linkLoad accumulates offered packets per tick per directed link.
	linkLoad map[[2]topology.NodeID]float64
	// routerLoad accumulates packets per tick each router processes
	// (normal + copied); normalRouterLoad holds the normal share.
	routerLoad       map[topology.NodeID]float64
	normalRouterLoad map[topology.NodeID]float64
	monitors         map[topology.NodeID]bool
	// traceEpoch numbers Run calls so their phase spans land in distinct
	// epoch timelines (see RunEpoch).
	traceEpoch uint64
}

// New builds a Simulator.
func New(cfg Config) (*Simulator, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	rng := cfg.Rand
	if rng == nil {
		rng = rand.New(rand.NewSource(cfg.Seed))
	}
	s := &Simulator{
		cfg:              cfg,
		rng:              rng,
		linkLoad:         make(map[[2]topology.NodeID]float64),
		routerLoad:       make(map[topology.NodeID]float64),
		normalRouterLoad: make(map[topology.NodeID]float64),
		monitors:         make(map[topology.NodeID]bool, len(cfg.Monitors)),
	}
	for _, m := range cfg.Monitors {
		s.monitors[m] = true
	}
	return s, nil
}

// RandomDemands draws n gateway-to-gateway demands with the given total
// offered rate, attack share included.
func (s *Simulator) RandomDemands(n int, totalRate, attackShare float64) []Demand {
	gws := s.cfg.Topology.Gateways()
	if len(gws) < 2 {
		panic("netsim: topology has fewer than 2 gateways")
	}
	per := totalRate / float64(n)
	out := make([]Demand, 0, n)
	for i := 0; i < n; i++ {
		src := gws[s.rng.Intn(len(gws))]
		dst := gws[s.rng.Intn(len(gws))]
		for dst == src {
			dst = gws[s.rng.Intn(len(gws))]
		}
		out = append(out, Demand{Src: src, Dst: dst, Rate: per, AttackRate: per * attackShare})
	}
	return out
}

// Run computes the steady state for a demand set: all demands follow
// shortest paths; monitors on a demand's path replicate the configured
// fraction of its traffic along the shortest path to the engine; links
// drop proportionally when oversubscribed; the engine drops past its
// capacity.
func (s *Simulator) Run(demands []Demand) (*Result, error) {
	clear(s.linkLoad)
	clear(s.routerLoad)
	clear(s.normalRouterLoad)
	cRuns.Inc()
	cDemands.Add(int64(len(demands)))
	epoch := s.traceEpoch
	s.traceEpoch++
	res := &Result{}

	type replication struct {
		from topology.NodeID
		rate float64
		// attackRate is the attack share inside the copied stream.
		attackRate float64
	}
	var reps []replication

	type routedDemand struct {
		d    Demand
		path []topology.NodeID
	}
	routed := make([]routedDemand, 0, len(demands))

	// Pass 1: route demands, accumulate link loads, and collect
	// replication streams at the first monitor on each path (flows are
	// monitored exactly once, §6).
	routeSpan := trace.StartSpan(nil, trace.StageSimRoute, trace.ControllerProc, epoch)
	for _, d := range demands {
		path, err := s.cfg.Topology.ShortestPath(d.Src, d.Dst)
		if err != nil {
			return nil, fmt.Errorf("netsim: demand %d→%d: %w", d.Src, d.Dst, err)
		}
		routed = append(routed, routedDemand{d: d, path: path})
		res.OfferedRate += d.Rate
		res.AttackOfferedRate += d.AttackRate
		for i := 1; i < len(path); i++ {
			s.linkLoad[[2]topology.NodeID{path[i-1], path[i]}] += d.Rate
		}
		for _, node := range path {
			s.routerLoad[node] += d.Rate
			s.normalRouterLoad[node] += d.Rate
		}
		if s.cfg.ReplicationFraction > 0 {
			mons := topology.MonitorsOnPath(path, s.monitors)
			if s.cfg.DedupReplication && len(mons) > 1 {
				mons = mons[:1]
			}
			for _, mon := range mons {
				reps = append(reps, replication{
					from:       mon,
					rate:       d.Rate * s.cfg.ReplicationFraction,
					attackRate: d.AttackRate * s.cfg.ReplicationFraction,
				})
			}
		}
	}

	// Pass 2: replication streams load the links toward the engine.
	repPaths := make([][]topology.NodeID, len(reps))
	for i, rep := range reps {
		path, err := s.cfg.Topology.ShortestPath(rep.from, s.cfg.EngineNode)
		if err != nil {
			return nil, fmt.Errorf("netsim: replication %d→engine: %w", rep.from, err)
		}
		repPaths[i] = path
		res.ReplicatedRate += rep.rate
		res.AttackReplicatedRate += rep.attackRate
		for j := 1; j < len(path); j++ {
			s.linkLoad[[2]topology.NodeID{path[j-1], path[j]}] += rep.rate
		}
		for _, node := range path {
			s.routerLoad[node] += rep.rate
		}
	}
	routeSpan.End()
	resolveSpan := trace.StartSpan(nil, trace.StageSimResolve, trace.ControllerProc, epoch)

	// Shared-substrate contention: when the aggregate processing work
	// (normal + copied, across all routers) exceeds the substrate
	// capacity, every stream degrades proportionally.
	substrateFactor := 1.0
	if s.cfg.SubstrateCapacity > 0 {
		// Sorted-key walk (mapiter): float addition is not associative,
		// so a map-order sum would make the contention factor — and the
		// whole run — vary across executions.
		var totalWork float64
		for _, node := range sortedNodes(s.routerLoad) {
			totalWork += s.routerLoad[node]
		}
		if totalWork > s.cfg.SubstrateCapacity {
			substrateFactor = s.cfg.SubstrateCapacity / totalWork
			if gamma := s.cfg.CollapseExponent; gamma > 1 {
				substrateFactor = math.Pow(substrateFactor, gamma)
			}
		}
	}

	// Pass 3: per-hop survival probability = min(1, capacity/offered)
	// for both links and router processing; a flow's delivery
	// probability is the product along its path (drop-tail approximated
	// as proportional loss).
	survival := func(path []topology.NodeID) float64 {
		p := 1.0
		for i := 1; i < len(path); i++ {
			load := s.linkLoad[[2]topology.NodeID{path[i-1], path[i]}]
			p *= Survival(load, s.cfg.LinkCapacity)
			if u := load / s.cfg.LinkCapacity; u > res.WorstLinkUtilization {
				res.WorstLinkUtilization = u
			}
		}
		if s.cfg.RouterCapacity > 0 {
			for _, node := range path {
				p *= Survival(s.routerLoad[node], s.cfg.RouterCapacity)
			}
		}
		return p * substrateFactor
	}

	for _, rd := range routed {
		res.DeliveredRate += rd.d.Rate * survival(rd.path)
	}

	// Switch-centric throughput accounting (the paper's Fig. 7a metric).
	// Sorted-key walk (mapiter): both accumulators are float sums, so
	// map-order iteration would leak the runtime's randomized order
	// into the reported throughput.
	for _, node := range sortedNodes(s.normalRouterLoad) {
		normal := s.normalRouterLoad[node]
		res.NormalSwitchWork += normal
		factor := substrateFactor
		if s.cfg.RouterCapacity > 0 {
			factor *= Survival(s.routerLoad[node], s.cfg.RouterCapacity)
		}
		res.NormalSwitchWorkDone += normal * factor
	}
	var engineAttack float64
	for i, rep := range reps {
		surv := survival(repPaths[i])
		res.EngineReceivedRate += rep.rate * surv
		engineAttack += rep.attackRate * surv
	}

	// Engine drop: proportional past capacity.
	attackFrac := Survival(res.EngineReceivedRate, s.cfg.EngineCapacity)
	res.EngineProcessedRate = res.EngineReceivedRate * attackFrac
	res.AttackProcessedRate = engineAttack * attackFrac
	// Attack traffic that was never replicated is also invisible: scale
	// by the replication fraction itself.
	// (AttackProcessedRate already reflects that: engineAttack only
	// contains the replicated share.)

	resolveSpan.End()

	if obs.Enabled() {
		//jaalvet:ignore mapiter — feeds only a histogram, whose bucket counts are order-independent; metrics never reach simulation outputs
		for _, load := range s.linkLoad {
			hLinkUtil.Observe(load / s.cfg.LinkCapacity)
		}
		gWorstUtil.Set(res.WorstLinkUtilization)
		gThroughputLoss.Set(res.ThroughputLossFraction())
		gAccuracyLoss.Set(res.AccuracyLossFraction())
	}
	return res, nil
}

// RunEpoch is Run plus epoch-trace bookkeeping: the whole steady-state
// computation becomes one traced epoch (route + resolve phase spans,
// sealed by trace.FinishEpoch), so simulator sweeps produce the same
// timeline artifacts as the live pipeline. With tracing disabled it is
// exactly Run.
func (s *Simulator) RunEpoch(demands []Demand) (*Result, error) {
	epoch := s.traceEpoch
	sp := trace.StartSpan(nil, trace.StageEpoch, trace.ControllerProc, epoch)
	res, err := s.Run(demands)
	sp.End()
	trace.FinishEpoch(epoch, 0)
	return res, err
}
