package netsim

import (
	"math/rand"
	"sync"
	"testing"

	"repro/internal/topology"
)

func testTopo(t *testing.T) *topology.Topology {
	t.Helper()
	top, err := topology.Generate(topology.GenerateConfig{Name: "sim", Routers: 80, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return top
}

func testConfig(t *testing.T, replication float64) Config {
	t.Helper()
	top := testTopo(t)
	mons, err := top.PlaceMonitors(10)
	if err != nil {
		t.Fatal(err)
	}
	return Config{
		Topology:            top,
		LinkCapacity:        1000,
		RouterCapacity:      1200,
		EngineCapacity:      1500,
		SubstrateCapacity:   12000,
		EngineNode:          mons[0],
		Monitors:            mons,
		ReplicationFraction: replication,
		Seed:                1,
	}
}

func TestConfigValidate(t *testing.T) {
	good := testConfig(t, 0.5)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.LinkCapacity = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero link capacity must be rejected")
	}
	bad = good
	bad.ReplicationFraction = 1.5
	if err := bad.Validate(); err == nil {
		t.Fatal("replication > 1 must be rejected")
	}
	bad = good
	bad.Topology = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil topology must be rejected")
	}
	bad = good
	bad.EngineNode = 9999
	if err := bad.Validate(); err == nil {
		t.Fatal("out-of-range engine node must be rejected")
	}
}

func TestNoReplicationNoLoss(t *testing.T) {
	sim, err := New(testConfig(t, 0))
	if err != nil {
		t.Fatal(err)
	}
	// Light load: well under link capacity.
	demands := sim.RandomDemands(20, 500, 0.1)
	res, err := sim.Run(demands)
	if err != nil {
		t.Fatal(err)
	}
	if res.ThroughputLossFraction() > 0.01 {
		t.Fatalf("unloaded network lost %.1f%% throughput", 100*res.ThroughputLossFraction())
	}
	if res.ReplicatedRate != 0 {
		t.Fatal("no replication configured, but traffic was copied")
	}
}

func TestFullReplicationDegrades(t *testing.T) {
	cfgNone := testConfig(t, 0)
	cfgFull := testConfig(t, 1.0)
	// Load links at ~60 % so replication pushes them past capacity.
	const offered = 6000

	run := func(cfg Config) *Result {
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.RandomDemands(60, offered, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	base := run(cfgNone)
	full := run(cfgFull)
	if full.ThroughputLossFraction() <= base.ThroughputLossFraction() {
		t.Fatalf("full replication must hurt throughput: base %.3f, full %.3f",
			base.ThroughputLossFraction(), full.ThroughputLossFraction())
	}
	if full.AccuracyLossFraction() <= 0 {
		t.Fatal("overloaded engine must miss attack traffic")
	}
	if full.WorstLinkUtilization <= 1 {
		t.Fatalf("links must be oversubscribed at full replication (util %.2f)", full.WorstLinkUtilization)
	}
}

func TestDegradationMonotoneInReplication(t *testing.T) {
	const offered = 6000
	var prevLoss float64 = -1
	for _, frac := range []float64{0, 0.25, 0.5, 0.75, 1.0} {
		sim, err := New(testConfig(t, frac))
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.RandomDemands(60, offered, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		loss := res.ThroughputLossFraction()
		if loss < prevLoss-1e-9 {
			t.Fatalf("throughput loss must be monotone in replication: %.4f after %.4f", loss, prevLoss)
		}
		prevLoss = loss
	}
}

func TestEngineCapacityBindsAccuracy(t *testing.T) {
	cfg := testConfig(t, 1.0)
	cfg.EngineCapacity = 100 // tiny engine
	cfg.LinkCapacity = 1e9   // links never bind
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	res, err := sim.Run(sim.RandomDemands(60, 6000, 0.1))
	if err != nil {
		t.Fatal(err)
	}
	if res.EngineProcessedRate > cfg.EngineCapacity+1e-9 {
		t.Fatalf("engine processed %.1f past capacity %.1f", res.EngineProcessedRate, cfg.EngineCapacity)
	}
	if res.AccuracyLossFraction() < 0.5 {
		t.Fatalf("tiny engine must miss most attacks, loss = %.3f", res.AccuracyLossFraction())
	}
}

func TestResultZeroDivision(t *testing.T) {
	r := &Result{}
	if r.ThroughputLossFraction() != 0 || r.AccuracyLossFraction() != 0 {
		t.Fatal("zero rates must yield zero loss")
	}
}

func TestRunDeterministic(t *testing.T) {
	cfg := testConfig(t, 0.5)
	run := func() *Result {
		sim, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		res, err := sim.Run(sim.RandomDemands(40, 4000, 0.1))
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	a, b := run(), run()
	if a.DeliveredRate != b.DeliveredRate || a.EngineProcessedRate != b.EngineProcessedRate {
		t.Fatal("same seed must reproduce results")
	}
}

// TestRunConcurrentSameSeed runs several same-seed simulations in
// parallel: each Simulator owns its RNG, so concurrent runs must be
// race-free and byte-identical to a sequential one. An injected
// Config.Rand must also override the seed.
func TestRunConcurrentSameSeed(t *testing.T) {
	cfg := testConfig(t, 0.5)
	run := func() *Result {
		sim, err := New(cfg)
		if err != nil {
			t.Error(err)
			return nil
		}
		res, err := sim.Run(sim.RandomDemands(40, 4000, 0.1))
		if err != nil {
			t.Error(err)
			return nil
		}
		return res
	}
	want := run()

	const n = 8
	got := make([]*Result, n)
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			got[i] = run()
		}(i)
	}
	wg.Wait()
	for i, res := range got {
		if res == nil {
			t.Fatalf("run %d failed", i)
		}
		if res.DeliveredRate != want.DeliveredRate ||
			res.EngineProcessedRate != want.EngineProcessedRate ||
			res.OfferedRate != want.OfferedRate {
			t.Fatalf("concurrent run %d diverged: %+v vs %+v", i, res, want)
		}
	}

	// A caller-supplied RNG takes precedence over Seed: a different
	// stream must change the random demand set.
	override := cfg
	override.Rand = rand.New(rand.NewSource(999))
	sim, err := New(override)
	if err != nil {
		t.Fatal(err)
	}
	base, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	d1 := sim.RandomDemands(40, 4000, 0.1)
	d2 := base.RandomDemands(40, 4000, 0.1)
	same := len(d1) == len(d2)
	if same {
		for i := range d1 {
			if d1[i] != d2[i] {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("Config.Rand override produced the seed-default demand stream")
	}
}
