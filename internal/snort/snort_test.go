package snort

import (
	"net/netip"
	"testing"

	"repro/internal/packet"
	"repro/internal/rules"
	"repro/internal/trafficgen"
)

func mustParse(t *testing.T, text string) *rules.Rule {
	t.Helper()
	r, err := rules.Parse(text)
	if err != nil {
		t.Fatal(err)
	}
	return r
}

func testEnv() *rules.Environment {
	env := rules.NewEnvironment()
	env.Set("HOME_NET", netip.MustParsePrefix("10.0.0.0/8"))
	return env
}

func TestMatchesRuleBasics(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> $HOME_NET 22 (flags:S; sid:1;)`)
	env := testEnv()
	match := packet.Header{Protocol: packet.ProtoTCP, DstIP: 0x0A010203, DstPort: 22, Flags: packet.FlagSYN}
	if !MatchesRule(r, env, &match) {
		t.Fatal("expected match")
	}
	cases := map[string]packet.Header{
		"wrong port":  {Protocol: packet.ProtoTCP, DstIP: 0x0A010203, DstPort: 23, Flags: packet.FlagSYN},
		"wrong net":   {Protocol: packet.ProtoTCP, DstIP: 0x0B010203, DstPort: 22, Flags: packet.FlagSYN},
		"wrong flags": {Protocol: packet.ProtoTCP, DstIP: 0x0A010203, DstPort: 22, Flags: packet.FlagACK},
		"extra flags": {Protocol: packet.ProtoTCP, DstIP: 0x0A010203, DstPort: 22, Flags: packet.FlagSYN | packet.FlagACK},
		"wrong proto": {Protocol: packet.ProtoUDP, DstIP: 0x0A010203, DstPort: 22, Flags: packet.FlagSYN},
	}
	for name, h := range cases {
		h := h
		if MatchesRule(r, env, &h) {
			t.Fatalf("%s: expected no match", name)
		}
	}
}

func TestMatchesRuleECNIgnored(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> any any (flags:S; sid:1;)`)
	h := packet.Header{Protocol: packet.ProtoTCP, Flags: packet.FlagSYN | packet.FlagECE | packet.FlagCWR}
	if !MatchesRule(r, nil, &h) {
		t.Fatal("ECE/CWR must be ignored by exact flag matching")
	}
}

func TestMatchesRuleFlagsPlus(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> any any (flags:S+; sid:1;)`)
	h := packet.Header{Protocol: packet.ProtoTCP, Flags: packet.FlagSYN | packet.FlagACK}
	if !MatchesRule(r, nil, &h) {
		t.Fatal("flags:S+ must match SYN|ACK")
	}
}

func TestMatchesRuleWindow(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> any any (flags:A; window:0; sid:1;)`)
	match := packet.Header{Protocol: packet.ProtoTCP, Flags: packet.FlagACK, Window: 0}
	if !MatchesRule(r, nil, &match) {
		t.Fatal("zero window must match")
	}
	miss := packet.Header{Protocol: packet.ProtoTCP, Flags: packet.FlagACK, Window: 100}
	if MatchesRule(r, nil, &miss) {
		t.Fatal("non-zero window must not match")
	}
}

func TestMatchesRuleNegatedAddress(t *testing.T) {
	r := mustParse(t, `alert tcp !10.0.0.0/8 any -> any any (sid:1;)`)
	inside := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 0x0A000001}
	outside := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 0x0B000001}
	if MatchesRule(r, nil, &inside) {
		t.Fatal("negated prefix must exclude inside addresses")
	}
	if !MatchesRule(r, nil, &outside) {
		t.Fatal("negated prefix must include outside addresses")
	}
}

func TestEngineDetectionFilter(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> any 22 (msg:"brute"; flags:S; detection_filter: track by_src, count 5, seconds 60; sid:7;)`)
	e := NewEngine(nil, []*rules.Rule{r})
	h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 42, DstPort: 22, Flags: packet.FlagSYN}
	for i := 0; i < 4; i++ {
		if alerts := e.ProcessPacket(&h); len(alerts) != 0 {
			t.Fatalf("alerted after %d packets, threshold is 5", i+1)
		}
	}
	if alerts := e.ProcessPacket(&h); len(alerts) != 1 || alerts[0].SID != 7 {
		t.Fatalf("expected alert at packet 5, got %v", alerts)
	}
	// Another source has its own counter.
	h2 := h
	h2.SrcIP = 43
	if alerts := e.ProcessPacket(&h2); len(alerts) != 0 {
		t.Fatal("per-source tracking must isolate counters")
	}
}

func TestEngineWindowExpiry(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> any 22 (flags:S; detection_filter: track by_src, count 3, seconds 10; sid:8;)`)
	e := NewEngine(nil, []*rules.Rule{r})
	h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 1, DstPort: 22, Flags: packet.FlagSYN}
	e.AdvanceTime(0)
	e.ProcessPacket(&h)
	e.ProcessPacket(&h)
	e.AdvanceTime(11) // window expired
	if alerts := e.ProcessPacket(&h); len(alerts) != 0 {
		t.Fatal("expired window must reset the counter")
	}
}

func TestEngineReset(t *testing.T) {
	r := mustParse(t, `alert tcp any any -> any any (flags:S; detection_filter: track by_src, count 2, seconds 60; sid:9;)`)
	e := NewEngine(nil, []*rules.Rule{r})
	h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 1, Flags: packet.FlagSYN}
	e.ProcessPacket(&h)
	e.Reset()
	if alerts := e.ProcessPacket(&h); len(alerts) != 0 {
		t.Fatal("reset must clear counters")
	}
}

func TestEngineProcessBatchOnAttack(t *testing.T) {
	rule, err := rules.LibraryRule(rules.AttackDistributedSYNFlood)
	if err != nil {
		t.Fatal(err)
	}
	env := testEnv()
	e := NewEngine(env, []*rules.Rule{rule})
	atk, err := trafficgen.NewAttack(rules.AttackDistributedSYNFlood, trafficgen.AttackConfig{Seed: 1, Victim: 0x0A000001})
	if err != nil {
		t.Fatal(err)
	}
	hs := make([]packet.Header, 1000)
	for i := range hs {
		hs[i] = atk.Next()
	}
	fired := e.ProcessBatch(hs)
	if fired[rule.SID] == 0 {
		t.Fatal("raw engine must detect the flood")
	}
}

func TestEngineCleanBackground(t *testing.T) {
	rule, _ := rules.LibraryRule(rules.AttackDistributedSYNFlood)
	env := testEnv()
	e := NewEngine(env, []*rules.Rule{rule})
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(2))
	fired := e.ProcessBatch(bg.Batch(5000))
	if n := fired[rule.SID]; n > 2 {
		t.Fatalf("background traffic fired the flood rule %d times", n)
	}
}

func TestRawMatcher(t *testing.T) {
	rule := mustParse(t, `alert tcp any any -> any 80 (flags:S; detection_filter: track by_dst, count 3, seconds 2; sid:5;)`)
	q, err := rules.Translate(rule, nil, rules.DefaultTranslateConfig())
	if err != nil {
		t.Fatal(err)
	}
	m := RawMatcher{}
	syn := packet.Header{Protocol: packet.ProtoTCP, DstPort: 80, Flags: packet.FlagSYN}
	if m.MatchRaw(q, []packet.Header{syn, syn}) {
		t.Fatal("2 < count threshold 3 must not match")
	}
	if !m.MatchRaw(q, []packet.Header{syn, syn, syn}) {
		t.Fatal("3 packets must match")
	}
	if m.MatchRaw(nil, []packet.Header{syn}) {
		t.Fatal("nil question must not match")
	}
}

func TestPortScanDetector(t *testing.T) {
	d := NewPortScanDetector()
	d.AdvanceTime(0)
	tripped := false
	for port := uint16(1); port <= 25; port++ {
		h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 99, DstPort: port, Flags: packet.FlagSYN}
		if d.ProcessPacket(&h) {
			tripped = true
			if port != uint16(d.DistinctPorts) {
				t.Fatalf("tripped at port %d, want %d", port, d.DistinctPorts)
			}
		}
	}
	if !tripped {
		t.Fatal("scan must trip the detector")
	}
	// Non-SYN packets are ignored.
	h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 100, DstPort: 1, Flags: packet.FlagACK}
	if d.ProcessPacket(&h) {
		t.Fatal("ACK packets must not count towards scans")
	}
	if d.String() == "" {
		t.Fatal("detector must describe itself")
	}
}

func TestPortScanDetectorWindowReset(t *testing.T) {
	d := NewPortScanDetector()
	d.AdvanceTime(0)
	for port := uint16(1); port <= 10; port++ {
		h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 7, DstPort: port, Flags: packet.FlagSYN}
		d.ProcessPacket(&h)
	}
	d.AdvanceTime(11) // window expires
	h := packet.Header{Protocol: packet.ProtoTCP, SrcIP: 7, DstPort: 11, Flags: packet.FlagSYN}
	if d.ProcessPacket(&h) {
		t.Fatal("expired window must reset distinct-port tracking")
	}
}
