// Package snort implements a Snort-like raw-packet detection engine for
// the paper's baselines: signature matching over raw headers plus the
// preprocessor-style detectors (port scan, flood tracking) that Snort
// handles outside its signature path.
//
// Jaal uses this engine three ways (§5.3, §8): as the ground-truth
// analyzer the feedback loop consults when summaries are inconclusive, as
// the central analysis engine of the raw-replication baseline (Fig. 7),
// and as the reference point for the communication-overhead accounting.
package snort

import (
	"fmt"

	"repro/internal/packet"
	"repro/internal/rules"
)

// Engine evaluates parsed rules against raw packet headers, maintaining
// the per-rule detection_filter counters Snort tracks.
type Engine struct {
	env   *rules.Environment
	rules []*rules.Rule
	// counters[sid] tracks detection_filter state per tracked key.
	counters map[int]map[uint32]*filterState
	// windowSeconds approximates the rolling window; counters reset on
	// AdvanceTime crossing a window boundary.
	now float64
}

// filterState is one detection_filter tracking bucket.
type filterState struct {
	count       int
	windowStart float64
}

// NewEngine builds an engine over a rule set.
func NewEngine(env *rules.Environment, rs []*rules.Rule) *Engine {
	return &Engine{env: env, rules: rs, counters: make(map[int]map[uint32]*filterState)}
}

// AdvanceTime moves the engine clock (seconds). Detection-filter windows
// expire relative to this clock.
func (e *Engine) AdvanceTime(now float64) { e.now = now }

// RuleAlert is an alert raised by the raw engine.
type RuleAlert struct {
	SID int
	Msg string
}

// ProcessPacket evaluates one raw header against every rule, returning
// any alerts. This is the per-packet hot path of a conventional NIDS —
// exactly the work Jaal moves out of the core network.
func (e *Engine) ProcessPacket(h *packet.Header) []RuleAlert {
	var alerts []RuleAlert
	for _, r := range e.rules {
		if !MatchesRule(r, e.env, h) {
			continue
		}
		if r.Filter == nil || r.Filter.Count <= 1 {
			alerts = append(alerts, RuleAlert{SID: r.SID, Msg: r.Msg})
			continue
		}
		key := h.DstIP
		if r.Filter.TrackBySrc {
			key = h.SrcIP
		}
		buckets, ok := e.counters[r.SID]
		if !ok {
			buckets = make(map[uint32]*filterState)
			e.counters[r.SID] = buckets
		}
		st, ok := buckets[key]
		if !ok || (r.Filter.Seconds > 0 && e.now-st.windowStart > float64(r.Filter.Seconds)) {
			st = &filterState{windowStart: e.now}
			buckets[key] = st
		}
		st.count++
		if st.count == r.Filter.Count {
			alerts = append(alerts, RuleAlert{SID: r.SID, Msg: r.Msg})
		}
	}
	return alerts
}

// ProcessBatch runs every header through the engine and reports the SIDs
// that alerted at least once.
func (e *Engine) ProcessBatch(hs []packet.Header) map[int]int {
	fired := make(map[int]int)
	for i := range hs {
		for _, a := range e.ProcessPacket(&hs[i]) {
			fired[a.SID]++
		}
	}
	return fired
}

// Reset clears all detection-filter state.
func (e *Engine) Reset() {
	e.counters = make(map[int]map[uint32]*filterState)
}

// MatchesRule reports whether a single raw header satisfies a rule's
// header constraints (addresses, ports, protocol, flags, window). It is
// the signature-matching predicate shared by the engine and the feedback
// loop's raw matcher.
func MatchesRule(r *rules.Rule, env *rules.Environment, h *packet.Header) bool {
	if n := r.Protocol.Number(); n >= 0 && int(h.Protocol) != n {
		return false
	}
	if !addressMatches(r.Src, env, h.SrcIP) {
		return false
	}
	if !addressMatches(r.Dst, env, h.DstIP) {
		return false
	}
	if !r.SrcPort.Matches(h.SrcPort) || !r.DstPort.Matches(h.DstPort) {
		return false
	}
	if r.Flags != nil {
		if !h.Flags.Has(r.Flags.Set) {
			return false
		}
		if r.Flags.Exact {
			// No flags outside the specified set (ignoring ECE/CWR
			// congestion bits, as Snort does by default).
			extra := h.Flags &^ (r.Flags.Set | packet.FlagECE | packet.FlagCWR)
			if extra != 0 {
				return false
			}
		}
	}
	if r.Window >= 0 && int(h.Window) != r.Window {
		return false
	}
	return true
}

func addressMatches(a rules.AddressSpec, env *rules.Environment, ip uint32) bool {
	match := true
	switch {
	case a.Any:
		match = true
	case a.Var != "":
		if env == nil {
			return !a.Negated // unresolvable treated as any
		}
		p, ok := env.Lookup(a.Var)
		if !ok {
			return !a.Negated
		}
		match = prefixContains(p.Addr().Is4(), packet.AddrToU32(p.Addr()), p.Bits(), ip)
	default:
		if !a.Prefix.IsValid() {
			return !a.Negated
		}
		match = prefixContains(a.Prefix.Addr().Is4(), packet.AddrToU32(a.Prefix.Addr()), a.Prefix.Bits(), ip)
	}
	if a.Negated {
		return !match
	}
	return match
}

func prefixContains(is4 bool, network uint32, bits int, ip uint32) bool {
	if !is4 || bits < 0 || bits > 32 {
		return false
	}
	if bits == 0 {
		return true
	}
	mask := ^uint32(0) << (32 - bits)
	return ip&mask == network&mask
}

// RawMatcher adapts the engine to the inference package's feedback
// interface: given a question and the raw packets fetched for uncertain
// centroids, it re-analyzes them "by pattern matching using traditional
// Snort rules" (§5.3) — including the rule's own detection_filter
// tracking, so a flood must still concentrate on one destination to be
// confirmed.
type RawMatcher struct {
	Env *rules.Environment
}

// MatchRaw implements inference.RawMatcher.
func (m RawMatcher) MatchRaw(q *rules.Question, hs []packet.Header) bool {
	if q == nil || q.Rule == nil {
		return false
	}
	if q.Rule.Filter == nil || q.Rule.Filter.Count <= 1 {
		for i := range hs {
			if MatchesRule(q.Rule, m.Env, &hs[i]) {
				return true
			}
		}
		return false
	}
	// Tracked rule: run the genuine engine so per-src/per-dst counting
	// applies. The fetched batch has no timestamps; the engine clock
	// stays at 0 so the detection window never expires mid-batch.
	engine := NewEngine(m.Env, []*rules.Rule{q.Rule})
	return engine.ProcessBatch(hs)[q.Rule.SID] > 0
}

// PortScanDetector reproduces Snort's sfPortscan-style preprocessor: it
// tracks, per source, the distinct destination ports probed within a
// window and alerts past a threshold.
type PortScanDetector struct {
	// DistinctPorts is the alert threshold on unique probed ports.
	DistinctPorts int
	// WindowSeconds is the tracking window.
	WindowSeconds float64

	now   float64
	track map[uint32]*scanState
}

type scanState struct {
	ports       map[uint16]bool
	windowStart float64
}

// NewPortScanDetector builds a detector; thresholds follow Snort's
// medium sensitivity defaults.
func NewPortScanDetector() *PortScanDetector {
	return &PortScanDetector{DistinctPorts: 20, WindowSeconds: 10, track: make(map[uint32]*scanState)}
}

// AdvanceTime moves the detector clock (seconds).
func (d *PortScanDetector) AdvanceTime(now float64) { d.now = now }

// ProcessPacket observes a header and reports whether it tripped the
// scan threshold for its source.
func (d *PortScanDetector) ProcessPacket(h *packet.Header) bool {
	if !h.Flags.Has(packet.FlagSYN) || h.Flags.Has(packet.FlagACK) {
		return false
	}
	st, ok := d.track[h.SrcIP]
	if !ok || d.now-st.windowStart > d.WindowSeconds {
		st = &scanState{ports: make(map[uint16]bool), windowStart: d.now}
		d.track[h.SrcIP] = st
	}
	st.ports[h.DstPort] = true
	return len(st.ports) == d.DistinctPorts
}

// String describes the detector configuration.
func (d *PortScanDetector) String() string {
	return fmt.Sprintf("sfPortscan(ports=%d, window=%.0fs)", d.DistinctPorts, d.WindowSeconds)
}
