// Package repro's root benchmark suite regenerates every table and
// figure of the paper's evaluation (§8) as testing.B benchmarks: one
// bench per experiment, each reporting the headline metrics of its
// table/figure via b.ReportMetric so `go test -bench=.` reproduces the
// paper's result series alongside wall-clock cost.
//
// The benches run at a reduced trial scale so the whole suite finishes
// in minutes; cmd/jaal-experiments runs the same experiments at the
// paper's full averaging scale.
package repro_test

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/core"
	"repro/internal/experiments"
	"repro/internal/linalg"
	"repro/internal/rules"
	"repro/internal/summary"
	"repro/internal/trafficgen"
)

// benchScale keeps the full-evaluation benches tractable.
func benchScale() experiments.Scale {
	return experiments.Scale{Trials: 4, BatchesPerTrial: 1, Monitors: 2}
}

// BenchmarkFig4ROCVaryK regenerates Fig. 4: detection accuracy vs the
// number of centroids k. Reported metrics are the TPR at 10 % FPR for
// k=100 and k=200 averaged across attacks (paper: k=200 near-saturates,
// k=100 pays a penalty).
func BenchmarkFig4ROCVaryK(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _, err := experiments.Fig4VaryK(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report := func(label string, idx int) {
			var sum float64
			for _, cs := range curves {
				sum += cs[idx].TPRAtFPR(0.10)
			}
			b.ReportMetric(sum/float64(len(curves)), label)
		}
		report("TPR@10%FPR/k=100", 0)
		report("TPR@10%FPR/k=200", 1)
		report("TPR@10%FPR/k=500", 2)
	}
}

// BenchmarkFig5ROCVaryRank regenerates Fig. 5: accuracy vs retained rank
// r (paper: r=12 ≈ r=15 ≫ r=10).
func BenchmarkFig5ROCVaryRank(b *testing.B) {
	for i := 0; i < b.N; i++ {
		curves, _, err := experiments.Fig5VaryRank(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		report := func(label string, idx int) {
			var sum float64
			for _, cs := range curves {
				sum += cs[idx].TPRAtFPR(0.10)
			}
			b.ReportMetric(sum/float64(len(curves)), label)
		}
		report("TPR@10%FPR/r=10", 0)
		report("TPR@10%FPR/r=12", 1)
		report("TPR@10%FPR/r=15", 2)
	}
}

// BenchmarkFig6Feedback regenerates Fig. 6: the TPR/overhead tradeoff of
// the two-threshold feedback loop (paper: ~98 % TPR at ~35 % overhead).
func BenchmarkFig6Feedback(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig6Feedback(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		best := points[len(points)-1]
		b.ReportMetric(best.TPR, "TPR")
		b.ReportMetric(best.FPR, "FPR")
		b.ReportMetric(best.Overhead, "overhead_vs_raw")
	}
}

// BenchmarkFig7Replication regenerates Fig. 7: throughput/accuracy
// degradation vs replication fraction (paper: ≈70 % avg throughput loss
// and ≈75 % accuracy loss at full replication).
func BenchmarkFig7Replication(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig7Replication(10, nil)
		if err != nil {
			b.Fatal(err)
		}
		last := points[len(points)-1]
		b.ReportMetric(last.AvgThroughputLoss, "tput_loss@100%")
		b.ReportMetric(last.AvgAccuracyLoss, "acc_loss@100%")
	}
}

// BenchmarkFig8Mirai regenerates Fig. 8: the Mirai epidemic with and
// without Jaal's detection-and-shutoff (paper: ≥3× fewer infections).
func BenchmarkFig8Mirai(b *testing.B) {
	for i := 0; i < b.N; i++ {
		unchecked, protected, _, err := experiments.Fig8Mirai()
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(unchecked.TotalInfected), "infected_unchecked")
		b.ReportMetric(float64(protected.TotalInfected), "infected_with_jaal")
	}
}

// BenchmarkFig9FlowAssign regenerates Fig. 9: load balance of greedy vs
// Robin-Hood vs random (paper: greedy within ~10 % of Robin-Hood).
func BenchmarkFig9FlowAssign(b *testing.B) {
	for i := 0; i < b.N; i++ {
		loads, _, err := experiments.Fig9FlowAssign(2000, nil)
		if err != nil {
			b.Fatal(err)
		}
		maxOf := func(xs []float64) float64 {
			m := 0.0
			for _, x := range xs {
				if x > m {
					m = x
				}
			}
			return m
		}
		b.ReportMetric(maxOf(loads.Greedy), "max_load_greedy")
		b.ReportMetric(maxOf(loads.RobinHood), "max_load_robinhood")
		b.ReportMetric(maxOf(loads.Random), "max_load_random")
	}
}

// BenchmarkFig10Spectrum regenerates Fig. 10: the singular-value
// spectrum of an n=1000 batch (paper: sharp drop past the top ~14).
func BenchmarkFig10Spectrum(b *testing.B) {
	for i := 0; i < b.N; i++ {
		s, _, err := experiments.Fig10Spectrum()
		if err != nil {
			b.Fatal(err)
		}
		var total, acc float64
		for _, v := range s {
			total += v * v
		}
		r90 := 0
		for j, v := range s {
			acc += v * v
			if acc >= 0.9*total {
				r90 = j + 1
				break
			}
		}
		b.ReportMetric(float64(r90), "rank_at_90%_energy")
	}
}

// BenchmarkFig11Compression regenerates Fig. 11: compression ratio vs
// batch size at fixed variance-estimation error (paper: η≈85 % at
// n=2000, ε=5 %).
func BenchmarkFig11Compression(b *testing.B) {
	for i := 0; i < b.N; i++ {
		points, _, err := experiments.Fig11Compression()
		if err != nil {
			b.Fatal(err)
		}
		for _, p := range points {
			if p.BatchSize == 2000 && p.Epsilon == 0.05 {
				b.ReportMetric(p.Compression, "eta@n=2000,eps=5%")
			}
		}
	}
}

// BenchmarkTable1Reservoir regenerates Table 1: reservoir sampling vs
// Jaal detection accuracy (paper: Jaal ≫ reservoir on every attack).
func BenchmarkTable1Reservoir(b *testing.B) {
	for i := 0; i < b.N; i++ {
		rows, _, err := experiments.Table1Reservoir(benchScale())
		if err != nil {
			b.Fatal(err)
		}
		var res, jaal float64
		for _, r := range rows {
			res += r.ReservoirAccuracy
			jaal += r.JaalAccuracy
		}
		b.ReportMetric(res/float64(len(rows)), "avg_acc_reservoir")
		b.ReportMetric(jaal/float64(len(rows)), "avg_acc_jaal")
	}
}

// --- microbenchmarks of the per-packet and per-batch hot paths ---

// BenchmarkSummarizeBatch measures the monitor-side cost of summarizing
// one n=1000 batch at the paper's operating point — the §8 "computation
// costs" observation that SVD + k-means keeps up with hundreds of Mbps.
func BenchmarkSummarizeBatch(b *testing.B) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(1))
	batch := bg.Batch(1000)
	szr, err := summary.NewSummarizer(summary.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := szr.Summarize(batch, 0, uint64(i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ReportMetric(float64(1000*b.N)/b.Elapsed().Seconds(), "packets/s")
}

// BenchmarkSVD1000x18 measures the raw SVD cost on a batch matrix.
func BenchmarkSVD1000x18(b *testing.B) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(2))
	x := summary.BuildMatrix(bg.Batch(1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := linalg.ComputeSVD(x); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeans1000x18 measures the clustering cost at k=200.
func BenchmarkKMeans1000x18(b *testing.B) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(3))
	x := summary.BuildMatrix(bg.Batch(1000))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rng := rand.New(rand.NewSource(int64(i)))
		if _, err := linalg.KMeans(x, 200, rng, linalg.KMeansConfig{}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkRuleTranslation measures translating the full rule library.
func BenchmarkRuleTranslation(b *testing.B) {
	env := experiments.Env()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := rules.LibraryQuestions(env, rules.DefaultTranslateConfig()); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSVDTruncated measures the zero-allocation truncated SVD path
// used by batch summarization: caller-held outputs plus a reused Scratch,
// so steady-state allocs/op should be zero.
func BenchmarkSVDTruncated(b *testing.B) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(4))
	x := summary.BuildMatrix(bg.Batch(1000))
	const r = 12
	ur := linalg.NewMatrix(x.Rows(), r)
	sr := make([]float64, r)
	vr := linalg.NewMatrix(x.Cols(), r)
	sc := linalg.GetScratch()
	defer linalg.PutScratch(sc)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sc.Reset()
		if err := linalg.TruncatedSVDInto(x, r, ur, sr, vr, sc); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkKMeans measures the clustering cost at the paper's k=200
// operating point across worker counts: the Lloyd assignment step fans
// out across the pool while seeding and centroid updates stay sequential,
// so every worker count computes identical clusters.
func BenchmarkKMeans(b *testing.B) {
	bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(5))
	x := summary.BuildMatrix(bg.Batch(1000))
	const k = 200
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			out := linalg.NewMatrix(k, x.Cols())
			assign := make([]int, x.Rows())
			counts := make([]int, k)
			sc := linalg.GetScratch()
			defer linalg.PutScratch(sc)
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				sc.Reset()
				rng := rand.New(rand.NewSource(int64(i)))
				cfg := linalg.KMeansConfig{Workers: w}
				if _, _, err := linalg.KMeansInto(x, k, rng, cfg, sc, out, assign, counts); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkPipelineEpochParallel measures one controller tick — polling
// 8 monitors, each flushing and summarizing a 500-packet batch, then one
// inference round — across worker counts for the epoch fan-out. The
// ingest is excluded from the timer; the measured region is RunEpoch.
func BenchmarkPipelineEpochParallel(b *testing.B) {
	env := experiments.Env()
	qs, err := rules.LibraryQuestions(env, rules.DefaultTranslateConfig())
	if err != nil {
		b.Fatal(err)
	}
	const monitors = 8
	for _, w := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("workers=%d", w), func(b *testing.B) {
			p, err := core.NewPipeline(core.PipelineConfig{
				NumMonitors: monitors,
				// BatchSize above the per-epoch ingest so no batch seals
				// during the (untimed) ingest; the flush inside RunEpoch
				// does the summarization we want to measure.
				Summary: summary.Config{BatchSize: 4000, Rank: 12, Centroids: 100, MinBatch: 100, Seed: 7},
				Controller: core.ControllerConfig{
					Env:       env,
					Questions: qs,
					Workers:   w,
				},
				Workers: w,
			})
			if err != nil {
				b.Fatal(err)
			}
			bg := trafficgen.NewBackground(trafficgen.DefaultBackgroundConfig(6))
			b.ReportAllocs()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				b.StopTimer()
				for m := 0; m < monitors; m++ {
					if err := p.Monitors[m].IngestBatch(bg.Batch(500)); err != nil {
						b.Fatal(err)
					}
				}
				b.StartTimer()
				if _, err := p.RunEpoch(); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
